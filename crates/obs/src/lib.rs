//! Process-wide, lock-free service metrics: atomic counters, gauges and
//! log₂-bucketed latency histograms, registered once by static name and
//! snapshot-able at any time without stopping writers.
//!
//! The registry hands out `&'static` handles (the backing storage is
//! leaked on first registration), so instrumented hot paths pay exactly
//! one relaxed atomic RMW per update — no locks, no allocation, no
//! branching on whether anyone is scraping. The registry's mutex is
//! taken only at registration time and when building a [`Snapshot`].
//!
//! Exposition lives here too: [`Snapshot::to_prometheus`] renders the
//! Prometheus text format (one `# TYPE` per family, cumulative `le`
//! buckets), and [`log`] provides the structured JSONL event log with
//! per-request trace ids used by the daemon.

pub mod log;

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Monotonically non-decreasing event count. All updates saturate so a
/// counter can never wrap, no matter the daemon uptime.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        // fetch_update never fails with an always-Some closure; the CAS
        // loop only matters within one contended cache line.
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(n)));
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (in-flight requests, open connections).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge { value: AtomicI64::new(0) }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets. Bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i < BUCKETS-1) holds values in `[2^(i-1), 2^i)`, and the last
/// bucket is the overflow (`+Inf`) bucket. 40 buckets cover ~2^38 —
/// about 76 hours when observations are microseconds.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Lock-free log₂-bucketed histogram. Same bucketing semantics as the
/// simulator-side `dmdp_stats::Histogram` percentile tables, but backed
/// by atomics so concurrent writers never block a snapshot reader.
///
/// The observation count is derived from the bucket array at snapshot
/// time (never stored separately), so a snapshot can lag individual
/// writers but can never show a count with no matching bucket — there
/// are no torn count/bucket pairs to observe.
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Index of the bucket holding `value`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (the Prometheus `le` value);
    /// `u64::MAX` for the overflow bucket.
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    #[inline]
    pub fn observe(&self, value: u64) {
        // Bucket before sum, with Release on the sum: `snapshot` reads
        // in the reverse order (sum first, Acquire), so any observation
        // a snapshot's sum includes already has its bucket increment
        // visible — the sum can lag the count but never outrun it.
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        let _ = self
            .sum
            .fetch_update(Ordering::Release, Ordering::Relaxed, |v| {
                Some(v.saturating_add(value))
            });
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        // Sum first — see `observe` for why the mirror order matters.
        let sum = self.sum.load(Ordering::Acquire);
        let buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().fold(0u64, |a, &b| a.saturating_add(b));
        HistogramSnapshot { buckets, count, sum }
    }
}

/// Point-in-time copy of a [`LogHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// One count per log₂ bucket (see [`LogHistogram::bucket_bound`]).
    pub buckets: Vec<u64>,
    /// Total observations (sum of `buckets`).
    pub count: u64,
    /// Saturating sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Approximate quantile (`q` in 0..=1): the exclusive upper bound of
    /// the bucket containing the `ceil(q * count)`-th observation.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= target {
                return if i == 0 {
                    0
                } else if i >= HISTOGRAM_BUCKETS - 1 {
                    LogHistogram::bucket_bound(i)
                } else {
                    1u64 << i
                };
            }
        }
        LogHistogram::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram — the distribution of observations in the window.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter().chain(std::iter::repeat(&0)))
            .map(|(&now, &then)| now.saturating_sub(then))
            .collect();
        let count = buckets.iter().fold(0u64, |a, &b| a.saturating_add(b));
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }
}

/// A registered metric handle.
#[derive(Debug, Clone, Copy)]
pub enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static LogHistogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
    help: &'static str,
    metric: Metric,
}

/// Process-wide metric registry. Registration is idempotent: asking for
/// the same (name, labels) again returns the existing handle, so every
/// subsystem can lazily register its own metrics without coordination.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .enumerate()
            .all(|(i, b)| b == b'_' || b.is_ascii_alphabetic() || (i > 0 && b.is_ascii_digit()))
}

impl Registry {
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        self.counter_with(name, &[], help)
    }

    pub fn counter_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> &'static Counter {
        match self.register(name, labels, help, || Metric::Counter(Box::leak(Box::default()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        self.gauge_with(name, &[], help)
    }

    pub fn gauge_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> &'static Gauge {
        match self.register(name, labels, help, || Metric::Gauge(Box::leak(Box::default()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static LogHistogram {
        self.histogram_with(name, &[], help)
    }

    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> &'static LogHistogram {
        match self.register(name, labels, help, || Metric::Histogram(Box::leak(Box::default()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name} already registered as {}", other.kind()),
        }
    }

    fn register(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels.iter().zip(labels).all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return e.metric;
        }
        let metric = make();
        entries.push(Entry {
            name,
            labels: labels.iter().map(|(k, v)| (*k, v.to_string())).collect(),
            help,
            metric,
        });
        metric
    }

    /// Consistent point-in-time read of every registered metric, sorted
    /// by (name, labels) so families come out contiguous.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<SnapshotEntry> = entries
            .iter()
            .map(|e| SnapshotEntry {
                name: e.name.to_string(),
                labels: e
                    .labels
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                help: e.help.to_string(),
                value: match e.metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot { entries: out }
    }
}

/// One metric (one label combination) at snapshot time.
#[derive(Debug, Clone)]
pub struct SnapshotEntry {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub help: String,
    pub value: SnapshotValue,
}

#[derive(Debug, Clone)]
pub enum SnapshotValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

impl SnapshotValue {
    pub fn kind(&self) -> &'static str {
        match self {
            SnapshotValue::Counter(_) => "counter",
            SnapshotValue::Gauge(_) => "gauge",
            SnapshotValue::Histogram(_) => "histogram",
        }
    }
}

/// Point-in-time view of the whole registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub entries: Vec<SnapshotEntry>,
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Render the Prometheus text exposition format (version 0.0.4):
    /// one `# HELP`/`# TYPE` per family, histograms as cumulative
    /// `_bucket{le=…}` series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for e in &self.entries {
            if last_family != Some(e.name.as_str()) {
                out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                out.push_str(&format!("# TYPE {} {}\n", e.name, e.value.kind()));
                last_family = Some(e.name.as_str());
            }
            match &e.value {
                SnapshotValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", e.name, label_block(&e.labels, None)));
                }
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("{}{} {v}\n", e.name, label_block(&e.labels, None)));
                }
                SnapshotValue::Histogram(h) => {
                    // Emit up to the highest occupied bucket, then +Inf.
                    let top = h
                        .buckets
                        .iter()
                        .rposition(|&b| b > 0)
                        .map(|i| i.min(HISTOGRAM_BUCKETS - 2))
                        .unwrap_or(0);
                    let mut cum = 0u64;
                    for i in 0..=top {
                        cum = cum.saturating_add(*h.buckets.get(i).unwrap_or(&0));
                        let le = LogHistogram::bucket_bound(i).to_string();
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            e.name,
                            label_block(&e.labels, Some(("le", &le)))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        label_block(&e.labels, Some(("le", "+Inf"))),
                        h.count
                    ));
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        h.sum
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        e.name,
                        label_block(&e.labels, None),
                        h.count
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn gauge_tracks_levels() {
        let g = Gauge::new();
        g.inc();
        g.add(4);
        g.dec();
        assert_eq!(g.get(), 4);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_bucket_math() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(LogHistogram::bucket_bound(0), 0);
        assert_eq!(LogHistogram::bucket_bound(2), 3);
        assert_eq!(LogHistogram::bucket_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn histogram_observe_and_quantile() {
        let h = LogHistogram::new();
        for v in [0u64, 1, 1, 3, 100, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1105);
        assert_eq!(s.quantile(0.01), 0);
        assert!(s.quantile(0.5) <= 4);
        assert!(s.quantile(1.0) >= 1000);
    }

    #[test]
    fn histogram_sum_saturates() {
        let h = LogHistogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.snapshot().sum, u64::MAX);
        assert_eq!(h.snapshot().count, 2);
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let r = Registry::default();
        let a = r.counter("test_total", "help");
        let b = r.counter("test_total", "help");
        assert!(std::ptr::eq(a, b));
        let l1 = r.counter_with("test_labeled_total", &[("type", "x")], "help");
        let l2 = r.counter_with("test_labeled_total", &[("type", "y")], "help");
        assert!(!std::ptr::eq(l1, l2));
        assert!(std::ptr::eq(
            l1,
            r.counter_with("test_labeled_total", &[("type", "x")], "help")
        ));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::default();
        r.counter("test_kind", "help");
        r.gauge("test_kind", "help");
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let r = Registry::default();
        r.counter_with("req_total", &[("type", "a")], "requests").add(3);
        r.counter_with("req_total", &[("type", "b")], "requests").inc();
        r.gauge("inflight", "in-flight jobs").set(2);
        let h = r.histogram("lat_us", "latency");
        h.observe(0);
        h.observe(5);
        let text = r.snapshot().to_prometheus();
        // Exactly one TYPE line per family.
        let types: Vec<&str> =
            text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        assert_eq!(types.len(), 3, "{text}");
        assert!(text.contains("# TYPE req_total counter"));
        assert!(text.contains("req_total{type=\"a\"} 3"));
        assert!(text.contains("req_total{type=\"b\"} 1"));
        assert!(text.contains("inflight 2"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_sum 5"));
        assert!(text.contains("lat_us_count 2"));
    }

    #[test]
    fn delta_since_windows_the_distribution() {
        let h = LogHistogram::new();
        h.observe(10);
        let before = h.snapshot();
        h.observe(1000);
        h.observe(2000);
        let d = h.snapshot().delta_since(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 3000);
        assert!(d.quantile(0.5) >= 1000);
    }
}
