//! Leveled, structured JSONL event log.
//!
//! Every event is one JSON object per line — `ts` (unix seconds),
//! `level`, `event`, plus arbitrary typed fields — written atomically
//! under a sink mutex so concurrent connection threads never interleave
//! bytes. Events below the configured level cost one relaxed atomic
//! load and nothing else.
//!
//! Trace ids ([`next_trace_id`]) are `t-<boot-nonce>-<seq>`: unique per
//! request within a process lifetime and greppable across the event
//! log, job events and campaign artifacts.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
}

impl Level {
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone)]
pub enum Value {
    Str(String),
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::Str(v.clone())
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

enum Sink {
    Stderr,
    File(BufWriter<File>),
}

/// A leveled JSONL event sink (stderr or an append-mode file).
pub struct EventLog {
    min_level: AtomicU8,
    sink: Mutex<Sink>,
}

impl EventLog {
    /// Log to stderr (the default for interactive `dmdp serve`).
    pub fn stderr(min_level: Level) -> EventLog {
        EventLog {
            min_level: AtomicU8::new(min_level as u8),
            sink: Mutex::new(Sink::Stderr),
        }
    }

    /// Log to `path`, appending (the file survives daemon restarts).
    pub fn file(path: &Path, min_level: Level) -> Result<EventLog, String> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        Ok(EventLog {
            min_level: AtomicU8::new(min_level as u8),
            sink: Mutex::new(Sink::File(BufWriter::new(file))),
        })
    }

    pub fn min_level(&self) -> Level {
        Level::from_u8(self.min_level.load(Ordering::Relaxed))
    }

    #[inline]
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 >= self.min_level.load(Ordering::Relaxed)
    }

    /// Emit one event line. Fields render in call order after the
    /// standard `ts`/`level`/`event` triple.
    pub fn event(&self, level: Level, event: &str, fields: &[(&str, Value)]) {
        if !self.enabled(level) {
            return;
        }
        let mut line = String::with_capacity(96);
        let _ = write!(line, "{{\"ts\":{:.3}", unix_now());
        let _ = write!(line, ",\"level\":\"{}\"", level.name());
        line.push_str(",\"event\":\"");
        escape_into(&mut line, event);
        line.push('"');
        for (key, value) in fields {
            line.push_str(",\"");
            escape_into(&mut line, key);
            line.push_str("\":");
            match value {
                Value::Str(s) => {
                    line.push('"');
                    escape_into(&mut line, s);
                    line.push('"');
                }
                Value::U64(v) => {
                    let _ = write!(line, "{v}");
                }
                Value::I64(v) => {
                    let _ = write!(line, "{v}");
                }
                Value::F64(v) => {
                    if v.is_finite() {
                        let _ = write!(line, "{v}");
                    } else {
                        line.push_str("null");
                    }
                }
                Value::Bool(v) => {
                    let _ = write!(line, "{v}");
                }
            }
        }
        line.push_str("}\n");
        let mut sink = self.sink.lock().unwrap();
        match &mut *sink {
            Sink::Stderr => {
                let _ = std::io::stderr().write_all(line.as_bytes());
            }
            Sink::File(w) => {
                let _ = w.write_all(line.as_bytes());
                let _ = w.flush();
            }
        }
    }

    pub fn debug(&self, event: &str, fields: &[(&str, Value)]) {
        self.event(Level::Debug, event, fields);
    }
    pub fn info(&self, event: &str, fields: &[(&str, Value)]) {
        self.event(Level::Info, event, fields);
    }
    pub fn warn(&self, event: &str, fields: &[(&str, Value)]) {
        self.event(Level::Warn, event, fields);
    }
    pub fn error(&self, event: &str, fields: &[(&str, Value)]) {
        self.event(Level::Error, event, fields);
    }
}

fn unix_now() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Fresh process-unique trace id: `t-<boot-nonce>-<sequence>`.
pub fn next_trace_id() -> String {
    static NONCE: OnceNonce = OnceNonce::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("t-{:08x}-{:04x}", NONCE.get(), seq)
}

/// Lazily-computed 32-bit boot nonce (time ⊕ pid), without needing
/// `OnceLock<u32>` gymnastics at every call site.
struct OnceNonce {
    value: AtomicU64,
}

impl OnceNonce {
    const fn new() -> OnceNonce {
        // 0 is the "unset" sentinel; the computed nonce is forced nonzero.
        OnceNonce { value: AtomicU64::new(0) }
    }

    fn get(&self) -> u32 {
        let v = self.value.load(Ordering::Relaxed);
        if v != 0 {
            return v as u32;
        }
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0xdead_beef);
        let mixed = (nanos ^ ((std::process::id() as u64) << 17)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let nonce = ((mixed >> 32) as u32) | 1;
        // First writer wins; losers adopt the published value.
        match self.value.compare_exchange(
            0,
            nonce as u64,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => nonce,
            Err(existing) => existing as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_greppable() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert!(a.starts_with("t-"), "{a}");
        let nonce = |s: &str| s.split('-').nth(1).unwrap().to_string();
        assert_eq!(nonce(&a), nonce(&b), "same boot nonce within a process");
    }

    #[test]
    fn file_log_writes_parseable_jsonl() {
        let dir = std::env::temp_dir()
            .join(format!("dmdp-obs-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        std::fs::remove_file(&path).ok();
        let log = EventLog::file(&path, Level::Info).unwrap();
        log.debug("dropped", &[]);
        log.info("hello", &[
            ("name", "wo\"rld\n".into()),
            ("n", 7u64.into()),
            ("neg", (-3i64).into()),
            ("ratio", 0.5.into()),
            ("ok", true.into()),
        ]);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "debug filtered below info: {text}");
        assert!(lines[0].contains("\"event\":\"hello\""));
        assert!(lines[0].contains("\"name\":\"wo\\\"rld\\n\""));
        assert!(lines[0].contains("\"n\":7"));
        assert!(lines[0].contains("\"neg\":-3"));
        assert!(lines[0].contains("\"ok\":true"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
