//! Registry under contention: writer threads hammer a counter, a gauge
//! and a histogram while a snapshot loop reads concurrently. Snapshots
//! must be monotonic (counters and histogram counts never go backwards)
//! and internally consistent (no torn reads: a histogram's count always
//! equals the sum of its buckets, and its sum always stays inside the
//! envelope implied by the observed value range).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dmdp_obs::{Registry, SnapshotValue};

const WRITERS: usize = 8;
const OPS_PER_WRITER: u64 = 100_000;
const OBSERVED_VALUE: u64 = 37;

#[test]
fn snapshots_are_monotonic_and_untorn_under_contention() {
    // A private leaked registry: the test owns its totals completely,
    // independent of anything the process-wide registry accumulates.
    let registry: &'static Registry = Box::leak(Box::default());
    let counter = registry.counter("contended_total", "hammered counter");
    let gauge = registry.gauge("contended_level", "hammered gauge");
    let histogram = registry.histogram("contended_us", "hammered histogram");

    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_counter = 0u64;
            let mut last_hist_count = 0u64;
            let mut last_hist_sum = 0u64;
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = registry.snapshot();
                for e in &snap.entries {
                    match (&e.name[..], &e.value) {
                        ("contended_total", SnapshotValue::Counter(v)) => {
                            assert!(
                                *v >= last_counter,
                                "counter went backwards: {v} < {last_counter}"
                            );
                            assert!(*v <= WRITERS as u64 * OPS_PER_WRITER);
                            last_counter = *v;
                        }
                        ("contended_level", SnapshotValue::Gauge(v)) => {
                            assert!(
                                (0..=WRITERS as i64).contains(v),
                                "gauge outside writer bounds: {v}"
                            );
                        }
                        ("contended_us", SnapshotValue::Histogram(h)) => {
                            let bucket_total: u64 = h.buckets.iter().sum();
                            assert_eq!(
                                h.count, bucket_total,
                                "torn read: count disagrees with buckets"
                            );
                            assert!(h.count >= last_hist_count, "histogram count regressed");
                            assert!(h.sum >= last_hist_sum, "histogram sum regressed");
                            // Writers observe only 37..=39; the sum may lag the
                            // bucket counts (sum is updated after the bucket) but
                            // can never exceed what the count explains.
                            assert!(h.sum <= h.count.saturating_mul(OBSERVED_VALUE + 2));
                            last_hist_count = h.count;
                            last_hist_sum = h.sum;
                        }
                        _ => {}
                    }
                }
                snapshots += 1;
            }
            snapshots
        })
    };

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                for i in 0..OPS_PER_WRITER {
                    counter.inc();
                    histogram.observe(OBSERVED_VALUE + (i % 3));
                    gauge.inc();
                    gauge.dec();
                }
            });
        }
    });
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "the snapshot loop actually ran");

    let final_snap = registry.snapshot();
    for e in &final_snap.entries {
        match (&e.name[..], &e.value) {
            ("contended_total", SnapshotValue::Counter(v)) => {
                assert_eq!(*v, WRITERS as u64 * OPS_PER_WRITER);
            }
            ("contended_level", SnapshotValue::Gauge(v)) => assert_eq!(*v, 0),
            ("contended_us", SnapshotValue::Histogram(h)) => {
                assert_eq!(h.count, WRITERS as u64 * OPS_PER_WRITER);
                let per_writer: u64 =
                    (0..OPS_PER_WRITER).map(|i| OBSERVED_VALUE + (i % 3)).sum();
                assert_eq!(h.sum, per_writer * WRITERS as u64);
            }
            _ => {}
        }
    }
}
