#![warn(missing_docs)]
//! # dmdp-prng
//!
//! A small, dependency-free, deterministic pseudo-random number
//! generator shared by the workload generators and the randomized test
//! suites. The whole repository must build offline, so this crate stands
//! in for `rand` (kernel data generation) and for `proptest`'s value
//! sources (the randomized property tests in each crate).
//!
//! The generator is **xoshiro256++** seeded through **SplitMix64** —
//! the exact construction recommended by the xoshiro authors — giving
//! a stable, portable stream: the same seed produces the same sequence
//! on every platform and in every future build of this crate (the
//! stream is part of the repository's determinism contract: workload
//! programs are generated from fixed seeds and tests assert bitwise
//! reproducibility).
//!
//! # Example
//!
//! ```
//! use dmdp_prng::Prng;
//! let mut a = Prng::new(42);
//! let mut b = Prng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.below(10) < 10);
//! ```

/// SplitMix64 — used to expand a 64-bit seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    pub fn new(seed: u64) -> Prng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is a fixed point; SplitMix64 cannot produce
        // four zero outputs from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Prng { s }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..bound` (`bound` of 0 returns 0).
    ///
    /// Uses Lemire's multiply-shift reduction; the slight modulo bias of
    /// a plain `%` would be harmless here, but this is just as cheap.
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u32() as u64 * bound as u64) >> 32) as u32
    }

    /// A uniform value in `0..bound` as `usize`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        debug_assert!(bound <= u32::MAX as usize);
        self.below(bound as u32) as usize
    }

    /// A uniform value in the inclusive range `lo..=hi`.
    #[inline]
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        debug_assert!(lo <= hi);
        let span = (hi as i64 - lo as i64 + 1) as u32;
        lo.wrapping_add(self.below(span) as i32)
    }

    /// A uniform random boolean.
    #[inline]
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num / den`.
    #[inline]
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_streams() {
        let mut a = Prng::new(7);
        let mut b = Prng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Prng::new(99);
        for bound in [1u32, 2, 3, 7, 100, 1 << 20] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn below_covers_small_ranges() {
        let mut r = Prng::new(5);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear: {seen:?}");
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Prng::new(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range_i32(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn flip_is_roughly_fair() {
        let mut r = Prng::new(13);
        let heads = (0..10_000).filter(|_| r.flip()).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn stream_is_pinned() {
        // The exact stream is part of the determinism contract: workload
        // programs are generated from it. If this test ever fails, the
        // generator changed and every golden workload changes with it.
        let mut r = Prng::new(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            [
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
    }
}
