//! Property tests for the T-SSBF and the SVW re-execution filter: the
//! combination must never miss a real hazard (soundness), no matter how
//! stores alias within the filter.
//!
//! Random access sequences come from the deterministic
//! [`dmdp_prng::Prng`] stream; the SVW rule spaces are enumerated
//! exhaustively.

use dmdp_isa::bab::{bab, overlaps, word_addr};
use dmdp_isa::MemWidth;
use dmdp_predict::svw::{needs_reexecution, DataSource};
use dmdp_predict::{Tssbf, TssbfConfig};
use dmdp_prng::Prng;

#[derive(Debug, Clone, Copy)]
struct Access {
    addr: u32,
    width: MemWidth,
}

fn arb_access(r: &mut Prng) -> Access {
    let width = match r.below(3) {
        0 => MemWidth::Byte,
        1 => MemWidth::Half,
        _ => MemWidth::Word,
    };
    // Offsets within the slot keep every width aligned.
    Access { addr: 0x4000 + r.below(32) * 4, width }
}

/// Soundness: after inserting stores 1..=n, a load whose true youngest
/// colliding store is among them gets `lookup().ssn >= that store's
/// SSN` — the T-SSBF may be conservative (forcing an unnecessary
/// re-execution) but never optimistic, as long as the set FIFO depth
/// is not exceeded for the matching set (we use a tiny filter and
/// verify against residency explicitly).
#[test]
fn lookup_never_underestimates_a_resident_collision() {
    let mut r = Prng::new(0x55BF_0001);
    for _ in 0..512 {
        let n = 1 + r.index(23);
        let stores: Vec<Access> = (0..n).map(|_| arb_access(&mut r)).collect();
        let load = arb_access(&mut r);

        let cfg = TssbfConfig { sets: 4, ways: 4 };
        let mut f = Tssbf::new(cfg);
        for (i, s) in stores.iter().enumerate() {
            f.store_retired(s.addr, bab(s.addr, s.width), i as u32 + 1);
        }
        let lb = bab(load.addr, load.width);
        // True youngest colliding store.
        let truth = stores
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| {
                word_addr(s.addr) == word_addr(load.addr)
                    && overlaps(bab(s.addr, s.width), lb)
            })
            .map(|(i, _)| i as u32 + 1);
        if let Some(t) = truth {
            // The entry is resident unless more than `ways` same-set
            // stores arrived at or after it (FIFO eviction). Replicate
            // the filter's set hash to count them.
            let set_of = |addr: u32| {
                let w = word_addr(addr) >> 2;
                (w ^ (w >> 7)) & (cfg.sets as u32 - 1)
            };
            let victim_set = set_of(stores[t as usize - 1].addr);
            let same_set_since = stores
                .iter()
                .skip(t as usize - 1)
                .filter(|s| set_of(s.addr) == victim_set)
                .count();
            let hit = f.lookup(load.addr, lb);
            if same_set_since <= cfg.ways {
                assert!(
                    hit.ssn >= t,
                    "resident collision underestimated: truth {t}, got {hit:?}"
                );
            }
        }
    }
}

/// The SVW rule is conservative: whenever the actual colliding store
/// committed after the load read the cache, a re-execution fires.
/// The (nvul × actual × tag_hit) space is small — enumerate it all.
#[test]
fn svw_cache_rule_is_conservative() {
    for nvul in 0u32..100 {
        for actual in 0u32..100 {
            for tag_hit in [false, true] {
                let hit = dmdp_predict::TssbfHit {
                    ssn: actual,
                    store_bab: tag_hit.then_some(0b1111),
                };
                let reexec = needs_reexecution(DataSource::Cache { ssn_nvul: nvul }, hit, 0b1111);
                if actual > nvul {
                    assert!(reexec, "hazard missed: nvul {nvul} actual {actual}");
                }
            }
        }
    }
}

/// Forwarded loads re-execute unless the match is exact and covering.
/// Exhaustive over (predicted × actual × store_bab × load_bab).
#[test]
fn svw_forward_rule_requires_exact_cover() {
    for predicted in 1u32..50 {
        for actual in 1u32..50 {
            for store_bab in 1u8..16 {
                for load_bab in 1u8..16 {
                    let hit = dmdp_predict::TssbfHit { ssn: actual, store_bab: Some(store_bab) };
                    let reexec = needs_reexecution(
                        DataSource::Forwarded { predicted_ssn: predicted },
                        hit,
                        load_bab,
                    );
                    let safe = actual == predicted && (store_bab & load_bab == load_bab);
                    assert_eq!(!reexec, safe, "pred {predicted} actual {actual} sb {store_bab:04b} lb {load_bab:04b}");
                }
            }
        }
    }
}
