//! Property tests for the T-SSBF and the SVW re-execution filter: the
//! combination must never miss a real hazard (soundness), no matter how
//! stores alias within the filter.

use dmdp_isa::bab::{bab, overlaps, word_addr};
use dmdp_isa::MemWidth;
use dmdp_predict::svw::{needs_reexecution, DataSource};
use dmdp_predict::{Tssbf, TssbfConfig};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
struct Access {
    addr: u32,
    width: MemWidth,
}

fn arb_access() -> impl Strategy<Value = Access> {
    (0u32..32, 0u8..3).prop_map(|(slot, w)| {
        let width = match w {
            0 => MemWidth::Byte,
            1 => MemWidth::Half,
            _ => MemWidth::Word,
        };
        // Offsets within the slot keep every width aligned.
        Access { addr: 0x4000 + slot * 4, width }
    })
}

proptest! {
    /// Soundness: after inserting stores 1..=n, a load whose true youngest
    /// colliding store is among them gets `lookup().ssn >= that store's
    /// SSN` — the T-SSBF may be conservative (forcing an unnecessary
    /// re-execution) but never optimistic, as long as the set FIFO depth
    /// is not exceeded for the matching set (we use a tiny filter and
    /// verify against residency explicitly).
    #[test]
    fn lookup_never_underestimates_a_resident_collision(
        stores in prop::collection::vec(arb_access(), 1..24),
        load in arb_access(),
    ) {
        let cfg = TssbfConfig { sets: 4, ways: 4 };
        let mut f = Tssbf::new(cfg);
        for (i, s) in stores.iter().enumerate() {
            f.store_retired(s.addr, bab(s.addr, s.width), i as u32 + 1);
        }
        let lb = bab(load.addr, load.width);
        // True youngest colliding store.
        let truth = stores
            .iter()
            .enumerate()
            .rev()
            .find(|(_, s)| {
                word_addr(s.addr) == word_addr(load.addr)
                    && overlaps(bab(s.addr, s.width), lb)
            })
            .map(|(i, _)| i as u32 + 1);
        if let Some(t) = truth {
            // The entry is resident unless more than `ways` same-set
            // stores arrived at or after it (FIFO eviction). Replicate
            // the filter's set hash to count them.
            let set_of = |addr: u32| {
                let w = word_addr(addr) >> 2;
                (w ^ (w >> 7)) & (cfg.sets as u32 - 1)
            };
            let victim_set = set_of(stores[t as usize - 1].addr);
            let same_set_since = stores
                .iter()
                .skip(t as usize - 1)
                .filter(|s| set_of(s.addr) == victim_set)
                .count();
            let hit = f.lookup(load.addr, lb);
            if same_set_since <= cfg.ways {
                prop_assert!(
                    hit.ssn >= t,
                    "resident collision underestimated: truth {t}, got {:?}",
                    hit
                );
            }
        }
    }

    /// The SVW rule is conservative: whenever the actual colliding store
    /// committed after the load read the cache, a re-execution fires.
    #[test]
    fn svw_cache_rule_is_conservative(
        nvul in 0u32..100,
        actual in 0u32..100,
        tag_hit in any::<bool>(),
    ) {
        let hit = dmdp_predict::TssbfHit {
            ssn: actual,
            store_bab: tag_hit.then_some(0b1111),
        };
        let reexec = needs_reexecution(DataSource::Cache { ssn_nvul: nvul }, hit, 0b1111);
        if actual > nvul {
            prop_assert!(reexec, "hazard missed: nvul {nvul} actual {actual}");
        }
    }

    /// Forwarded loads re-execute unless the match is exact and covering.
    #[test]
    fn svw_forward_rule_requires_exact_cover(
        predicted in 1u32..50,
        actual in 1u32..50,
        store_bab in 1u8..16,
        load_bab in 1u8..16,
    ) {
        let hit = dmdp_predict::TssbfHit { ssn: actual, store_bab: Some(store_bab) };
        let reexec =
            needs_reexecution(DataSource::Forwarded { predicted_ssn: predicted }, hit, load_bab);
        let safe = actual == predicted && (store_bab & load_bab == load_bab);
        prop_assert_eq!(!reexec, safe);
    }
}
