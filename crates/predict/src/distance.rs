use dmdp_isa::Pc;

/// How the confidence counter reacts to a misprediction (paper §IV-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConfidencePolicy {
    /// NoSQ's balanced update: −1 on a misprediction.
    #[default]
    Balanced,
    /// DMDP's biased update: divide by two on a misprediction. "Because
    /// the cost is biased, the confidence counter update should be biased
    /// as well" — predication is cheap, a dependence misprediction is a
    /// full recovery.
    Biased,
}

/// Store distance predictor configuration. The paper's instance: two
/// 4-way set-associative 1K-entry tables (path-insensitive indexed by
/// load PC, path-sensitive by PC ⊕ 8-bit branch history), each entry a
/// 7-bit confidence counter, tag, and 6-bit distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceConfig {
    /// Sets per table (power of two).
    pub sets: usize,
    /// Ways per set.
    pub ways: usize,
    /// Bits of branch history XORed into the path-sensitive index.
    pub history_bits: u32,
    /// Confidence counter ceiling (7 bits → 127).
    pub max_confidence: u8,
    /// Cloaking threshold: "if the value is greater than 63, memory
    /// cloaking is used".
    pub threshold: u8,
    /// Confidence assigned on allocation ("set to 64 by default").
    pub initial_confidence: u8,
    /// Maximum representable distance (6 bits → 63).
    pub max_distance: u32,
    /// Misprediction reaction.
    pub policy: ConfidencePolicy,
}

impl Default for DistanceConfig {
    fn default() -> DistanceConfig {
        DistanceConfig {
            sets: 256,
            ways: 4,
            history_bits: 8,
            max_confidence: 127,
            threshold: 63,
            initial_confidence: 64,
            max_distance: 63,
            policy: ConfidencePolicy::Balanced,
        }
    }
}

/// A store-distance prediction for a load being renamed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted number of stores between the colliding store and the
    /// load: `SSN_byp = SSN_rename - distance`.
    pub distance: u32,
    /// Whether confidence exceeds the cloaking threshold.
    pub confident: bool,
    /// Whether the path-sensitive table provided the prediction.
    pub path_sensitive: bool,
    /// Byte Access Bits observed for the colliding store last time —
    /// NoSQ predicts partial-word shift amounts from these (§IV-D).
    pub store_bab: u8,
    /// The load's low address bits observed last time.
    pub load_lo2: u8,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    tag: u32,
    distance: u32,
    confidence: u8,
    store_bab: u8,
    load_lo2: u8,
    lru: u64,
    valid: bool,
}

#[derive(Debug, Clone)]
struct Table {
    sets: usize,
    ways: usize,
    entries: Vec<Entry>,
    stamp: u64,
}

impl Table {
    fn new(sets: usize, ways: usize) -> Table {
        Table {
            sets,
            ways,
            entries: vec![
                Entry {
                    tag: 0,
                    distance: 0,
                    confidence: 0,
                    store_bab: 0,
                    load_lo2: 0,
                    lru: 0,
                    valid: false
                };
                sets * ways
            ],
            stamp: 0,
        }
    }

    /// The set is chosen by the (possibly history-XORed) index key; the
    /// tag is the load PC itself — the paper's 22-bit entry tag — so
    /// different loads hashing to one set never alias.
    fn set_of(&self, index_key: u32) -> usize {
        (index_key as usize) & (self.sets - 1)
    }

    fn get(&self, index_key: u32, tag: u32) -> Option<&Entry> {
        let set = self.set_of(index_key);
        self.entries[set * self.ways..(set + 1) * self.ways]
            .iter()
            .find(|e| e.valid && e.tag == tag)
    }

    fn get_mut(&mut self, index_key: u32, tag: u32) -> Option<&mut Entry> {
        let set = self.set_of(index_key);
        let ways = self.ways;
        self.entries[set * ways..(set + 1) * ways]
            .iter_mut()
            .find(|e| e.valid && e.tag == tag)
    }

    fn touch(&mut self, index_key: u32, tag: u32) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(e) = self.get_mut(index_key, tag) {
            e.lru = stamp;
        }
    }

    fn allocate(
        &mut self,
        index_key: u32,
        tag: u32,
        distance: u32,
        confidence: u8,
        store_bab: u8,
        load_lo2: u8,
    ) {
        self.stamp += 1;
        let set = self.set_of(index_key);
        let ways = self.ways;
        let slice = &mut self.entries[set * ways..(set + 1) * ways];
        let victim = slice
            .iter()
            .position(|e| !e.valid)
            .unwrap_or_else(|| {
                slice
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.lru)
                    .map(|(i, _)| i)
                    .expect("nonempty set")
            });
        slice[victim] =
            Entry { tag, distance, confidence, store_bab, load_lo2, lru: self.stamp, valid: true };
    }
}

/// The path-sensitive store distance predictor (paper §IV-A d).
///
/// Both tables are read at prediction time; the path-sensitive result is
/// preferred when present. Missing both tables predicts the load
/// independent. Confidence is embedded in each entry and obeys the
/// configured [`ConfidencePolicy`].
///
/// # Example
///
/// ```
/// use dmdp_predict::{ConfidencePolicy, DistanceConfig, DistancePredictor};
/// let mut p = DistancePredictor::new(DistanceConfig {
///     policy: ConfidencePolicy::Biased,
///     ..DistanceConfig::default()
/// });
/// assert!(p.predict(100, 0).is_none());     // unknown load: independent
/// p.train(100, 0, 3);                        // a collision at distance 3
/// let pr = p.predict(100, 0).unwrap();
/// assert_eq!(pr.distance, 3);
/// assert!(pr.confident);                     // allocated at 64 > 63
/// ```
#[derive(Debug, Clone)]
pub struct DistancePredictor {
    cfg: DistanceConfig,
    insensitive: Table,
    sensitive: Table,
    predictions: u64,
    trainings: u64,
}

impl DistancePredictor {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two, `ways` is nonzero, and
    /// `threshold < max_confidence`.
    pub fn new(cfg: DistanceConfig) -> DistancePredictor {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be nonzero");
        assert!(cfg.threshold < cfg.max_confidence, "threshold must be below the ceiling");
        DistancePredictor {
            insensitive: Table::new(cfg.sets, cfg.ways),
            sensitive: Table::new(cfg.sets, cfg.ways),
            cfg,
            predictions: 0,
            trainings: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DistanceConfig {
        &self.cfg
    }

    fn sensitive_key(&self, pc: Pc, history: u32) -> u32 {
        pc ^ (history & ((1 << self.cfg.history_bits) - 1))
    }

    /// A side-effect-free lookup (no LRU/statistics update) — the rename
    /// stage uses this to size an instruction's µop group before
    /// committing rename bandwidth to it.
    pub fn peek(&self, pc: Pc, history: u32) -> Option<Prediction> {
        let skey = self.sensitive_key(pc, history);
        let entry = self.sensitive.get(skey, pc).or_else(|| self.insensitive.get(pc, pc))?;
        Some(Prediction {
            distance: entry.distance,
            confident: entry.confidence > self.cfg.threshold,
            path_sensitive: false,
            store_bab: entry.store_bab,
            load_lo2: entry.load_lo2,
        })
    }

    /// Predicts the store distance for the load at `pc` with the current
    /// branch `history`. `None` ⇒ predicted independent.
    pub fn predict(&mut self, pc: Pc, history: u32) -> Option<Prediction> {
        self.predictions += 1;
        let skey = self.sensitive_key(pc, history);
        if let Some(e) = self.sensitive.get(skey, pc) {
            let p = Prediction {
                distance: e.distance,
                confident: e.confidence > self.cfg.threshold,
                path_sensitive: true,
                store_bab: e.store_bab,
                load_lo2: e.load_lo2,
            };
            self.sensitive.touch(skey, pc);
            return Some(p);
        }
        if let Some(e) = self.insensitive.get(pc, pc) {
            let p = Prediction {
                distance: e.distance,
                confident: e.confidence > self.cfg.threshold,
                path_sensitive: false,
                store_bab: e.store_bab,
                load_lo2: e.load_lo2,
            };
            self.insensitive.touch(pc, pc);
            return Some(p);
        }
        None
    }

    /// Trains both tables with an observed collision at `actual_distance`
    /// (clamped to the representable range). Called at retire whenever a
    /// dependence is verified or a load re-execution reveals one — the
    /// silent-store-aware policy updates on *every* re-execution
    /// (paper §IV-C a).
    pub fn train(&mut self, pc: Pc, history: u32, actual_distance: u32) {
        self.train_with_geometry(pc, history, actual_distance, 0b1111, 0);
    }

    /// [`DistancePredictor::train`] that also records the collision's
    /// byte geometry (the store's BAB and the load's low address bits),
    /// which NoSQ's shift-and-mask prediction replays (§IV-D).
    pub fn train_with_geometry(
        &mut self,
        pc: Pc,
        history: u32,
        actual_distance: u32,
        store_bab: u8,
        load_lo2: u8,
    ) {
        self.trainings += 1;
        let d = actual_distance.min(self.cfg.max_distance);
        let skey = self.sensitive_key(pc, history);
        for (table, key) in [(&mut self.insensitive, pc), (&mut self.sensitive, skey)] {
            match table.get_mut(key, pc) {
                Some(e) => {
                    if e.distance == d {
                        e.confidence = (e.confidence + 1).min(self.cfg.max_confidence);
                    } else {
                        e.confidence = match self.cfg.policy {
                            ConfidencePolicy::Balanced => e.confidence.saturating_sub(1),
                            ConfidencePolicy::Biased => e.confidence >> 1,
                        };
                        e.distance = d;
                    }
                    e.store_bab = store_bab;
                    e.load_lo2 = load_lo2;
                }
                None => {
                    table.allocate(key, pc, d, self.cfg.initial_confidence, store_bab, load_lo2)
                }
            }
        }
    }

    /// Records a *correct* prediction outcome for a load predicted
    /// dependent (confidence strengthens; distance already matches).
    pub fn reward(&mut self, pc: Pc, history: u32) {
        let skey = self.sensitive_key(pc, history);
        for (table, key) in [(&mut self.insensitive, pc), (&mut self.sensitive, skey)] {
            if let Some(e) = table.get_mut(key, pc) {
                e.confidence = (e.confidence + 1).min(self.cfg.max_confidence);
            }
        }
    }

    /// Records a misprediction where the load turned out to be
    /// *independent* of any in-flight store: confidence drops per policy
    /// but the distance is kept (there is no new distance to learn).
    pub fn punish(&mut self, pc: Pc, history: u32) {
        let skey = self.sensitive_key(pc, history);
        for (table, key) in [(&mut self.insensitive, pc), (&mut self.sensitive, skey)] {
            if let Some(e) = table.get_mut(key, pc) {
                e.confidence = match self.cfg.policy {
                    ConfidencePolicy::Balanced => e.confidence.saturating_sub(1),
                    ConfidencePolicy::Biased => e.confidence >> 1,
                };
            }
        }
    }

    /// Total predictions issued.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total training events.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(policy: ConfidencePolicy) -> DistancePredictor {
        DistancePredictor::new(DistanceConfig { policy, ..DistanceConfig::default() })
    }

    #[test]
    fn unknown_load_predicts_independent() {
        let mut pr = p(ConfidencePolicy::Balanced);
        assert!(pr.predict(42, 0).is_none());
    }

    #[test]
    fn allocation_starts_confident() {
        let mut pr = p(ConfidencePolicy::Balanced);
        pr.train(42, 0, 5);
        let pred = pr.predict(42, 0).unwrap();
        assert_eq!(pred.distance, 5);
        assert!(pred.confident, "initial confidence 64 exceeds threshold 63");
    }

    #[test]
    fn balanced_single_miss_drops_below_threshold() {
        let mut pr = p(ConfidencePolicy::Balanced);
        pr.train(42, 0, 5);
        pr.punish(42, 0); // 64 -> 63, no longer > 63
        assert!(!pr.predict(42, 0).unwrap().confident);
        pr.reward(42, 0); // 64 again
        assert!(pr.predict(42, 0).unwrap().confident);
    }

    #[test]
    fn biased_miss_halves_confidence() {
        let mut pr = p(ConfidencePolicy::Biased);
        pr.train(42, 0, 5);
        pr.punish(42, 0); // 64 -> 32
        assert!(!pr.predict(42, 0).unwrap().confident);
        // Takes ~32 corrects to recover past the threshold.
        for _ in 0..31 {
            pr.reward(42, 0);
        }
        assert!(!pr.predict(42, 0).unwrap().confident);
        pr.reward(42, 0);
        assert!(pr.predict(42, 0).unwrap().confident);
    }

    #[test]
    fn distance_change_retrains() {
        let mut pr = p(ConfidencePolicy::Balanced);
        pr.train(42, 0, 5);
        pr.train(42, 0, 7); // distance changed
        let pred = pr.predict(42, 0).unwrap();
        assert_eq!(pred.distance, 7);
        assert!(!pred.confident, "confidence 63 after the mismatch");
    }

    #[test]
    fn path_sensitive_preferred() {
        let mut pr = p(ConfidencePolicy::Balanced);
        pr.train(42, 0xAA, 3);
        // Same PC, different history: the sensitive table misses but the
        // insensitive one hits.
        let by_path = pr.predict(42, 0xAA).unwrap();
        assert!(by_path.path_sensitive);
        let fallback = pr.predict(42, 0x55).unwrap();
        assert!(!fallback.path_sensitive);
        assert_eq!(fallback.distance, 3);
    }

    #[test]
    fn distinct_paths_learn_distinct_distances() {
        let mut pr = p(ConfidencePolicy::Balanced);
        pr.train(42, 0x01, 2);
        pr.train(42, 0x02, 9);
        assert_eq!(pr.predict(42, 0x01).unwrap().distance, 2);
        assert_eq!(pr.predict(42, 0x02).unwrap().distance, 9);
    }

    #[test]
    fn distance_clamps_to_six_bits() {
        let mut pr = p(ConfidencePolicy::Balanced);
        pr.train(42, 0, 1000);
        assert_eq!(pr.predict(42, 0).unwrap().distance, 63);
    }

    #[test]
    fn confidence_saturates_at_ceiling() {
        let mut pr = p(ConfidencePolicy::Balanced);
        pr.train(42, 0, 5);
        for _ in 0..200 {
            pr.reward(42, 0);
        }
        // One balanced punish cannot unconfident a saturated entry.
        pr.punish(42, 0);
        assert!(pr.predict(42, 0).unwrap().confident);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_config_panics() {
        let _ = DistancePredictor::new(DistanceConfig {
            threshold: 127,
            ..DistanceConfig::default()
        });
    }
}
