use dmdp_isa::Pc;

/// Branch predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchConfig {
    /// log2 of the gshare pattern table size (2-bit counters).
    pub gshare_bits: u32,
    /// Number of direct-mapped BTB entries (power of two).
    pub btb_entries: usize,
    /// Return-address stack depth.
    pub ras_depth: usize,
    /// History bits kept (also feeds the path-sensitive store distance
    /// predictor, which XORs 8 of them with the load PC).
    pub history_bits: u32,
}

impl Default for BranchConfig {
    fn default() -> BranchConfig {
        BranchConfig { gshare_bits: 15, btb_entries: 4096, ras_depth: 32, history_bits: 16 }
    }
}

/// A gshare direction predictor with a direct-mapped BTB and a return
/// address stack.
///
/// The fetch stage consults [`BranchPredictor::predict_cond`]; execute resolves
/// branches and calls [`BranchPredictor::resolve`]. Global history is
/// updated speculatively at predict and repaired on a misprediction via
/// the snapshot carried in the prediction.
///
/// # Example
///
/// ```
/// use dmdp_predict::BranchPredictor;
/// let mut bp = BranchPredictor::default();
/// // Train a branch at pc 10 to be always taken to 42.
/// for _ in 0..64 {
///     let p = bp.predict_cond(10);
///     if !p.taken {
///         bp.mispredicted(p.history, true); // repair speculative history
///     }
///     bp.resolve(10, true, 42, p.history);
/// }
/// let p = bp.predict_cond(10);
/// assert!(p.taken);
/// assert_eq!(p.target, Some(42));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: BranchConfig,
    pht: Vec<u8>,
    btb: Vec<Option<(Pc, Pc)>>, // (branch pc, target)
    ras: Vec<Pc>,
    history: u32,
    lookups: u64,
    mispredicts: u64,
}

/// A conditional-branch prediction plus the state needed to repair the
/// predictor on a misprediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Predicted target from the BTB (None on a BTB miss).
    pub target: Option<Pc>,
    /// The global history *before* this prediction, passed back to
    /// [`BranchPredictor::resolve`].
    pub history: u32,
}

impl Default for BranchPredictor {
    fn default() -> BranchPredictor {
        BranchPredictor::new(BranchConfig::default())
    }
}

impl BranchPredictor {
    /// Creates a predictor with weakly-not-taken counters.
    ///
    /// # Panics
    ///
    /// Panics unless `btb_entries` is a power of two.
    pub fn new(cfg: BranchConfig) -> BranchPredictor {
        assert!(cfg.btb_entries.is_power_of_two(), "BTB entries must be a power of two");
        BranchPredictor {
            pht: vec![1; 1 << cfg.gshare_bits],
            btb: vec![None; cfg.btb_entries],
            ras: Vec::with_capacity(cfg.ras_depth),
            history: 0,
            lookups: 0,
            mispredicts: 0,
            cfg,
        }
    }

    /// The low `history_bits` of global branch history (consumed by the
    /// path-sensitive store distance predictor).
    pub fn history(&self) -> u32 {
        self.history & ((1 << self.cfg.history_bits) - 1)
    }

    #[inline]
    fn pht_index(&self, pc: Pc) -> usize {
        ((pc ^ self.history) & ((1 << self.cfg.gshare_bits) - 1)) as usize
    }

    /// Predicts a conditional branch at `pc`, speculatively updating
    /// global history.
    pub fn predict_cond(&mut self, pc: Pc) -> CondPrediction {
        self.lookups += 1;
        let before = self.history;
        let counter = self.pht[self.pht_index(pc)];
        let taken = counter >= 2;
        let target = self.btb_lookup(pc);
        self.history = (self.history << 1) | taken as u32;
        CondPrediction { taken, target, history: before }
    }

    /// Looks up the BTB for any control instruction at `pc`.
    pub fn btb_lookup(&self, pc: Pc) -> Option<Pc> {
        let slot = (pc as usize) & (self.cfg.btb_entries - 1);
        match self.btb[slot] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Installs a target in the BTB (done when a control µop resolves).
    pub fn btb_install(&mut self, pc: Pc, target: Pc) {
        let slot = (pc as usize) & (self.cfg.btb_entries - 1);
        self.btb[slot] = Some((pc, target));
    }

    /// Resolves a conditional branch: trains the counter (indexed with the
    /// pre-prediction history), installs the target, and on a wrong
    /// direction repairs the speculative history.
    pub fn resolve(&mut self, pc: Pc, taken: bool, target: Pc, history_before: u32) {
        let idx = ((pc ^ history_before) & ((1 << self.cfg.gshare_bits) - 1)) as usize;
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        if taken {
            self.btb_install(pc, target);
        }
    }

    /// Trains on one resolved branch with no prior prediction:
    /// counter, BTB and global history advance exactly as a
    /// correctly-predicted [`BranchPredictor::resolve`] would, but no
    /// lookup or misprediction is counted. Checkpoint-seeded warming
    /// replays the trailing branch stream through this so a sampled
    /// interval starts with a trained predictor instead of paying a
    /// misprediction storm the uncheckpointed run never had.
    pub fn warm(&mut self, pc: Pc, taken: bool, target: Pc) {
        let before = self.history;
        self.resolve(pc, taken, target, before);
        self.history = (before << 1) | taken as u32;
    }

    /// Reports a misprediction: repairs global history to the resolved
    /// outcome (`history_before << 1 | actual`).
    pub fn mispredicted(&mut self, history_before: u32, actual_taken: bool) {
        self.mispredicts += 1;
        self.history = (history_before << 1) | actual_taken as u32;
    }

    /// Restores global history to a snapshot (used when a non-branch
    /// recovery squashes speculatively-predicted branches).
    pub fn set_history(&mut self, history: u32) {
        self.history = history;
    }

    /// Pushes a return address (on `jal`/`jalr`).
    pub fn ras_push(&mut self, return_pc: Pc) {
        if self.ras.len() == self.cfg.ras_depth {
            self.ras.remove(0);
        }
        self.ras.push(return_pc);
    }

    /// Pops a predicted return target (on `jr`).
    pub fn ras_pop(&mut self) -> Option<Pc> {
        self.ras.pop()
    }

    /// Direction lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredictions reported.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_bias() {
        let mut bp = BranchPredictor::default();
        for _ in 0..64 {
            let p = bp.predict_cond(100);
            if !p.taken {
                bp.mispredicted(p.history, true);
            }
            bp.resolve(100, true, 7, p.history);
        }
        assert!(bp.predict_cond(100).taken);
    }

    #[test]
    fn btb_miss_then_hit() {
        let mut bp = BranchPredictor::default();
        assert_eq!(bp.btb_lookup(5), None);
        bp.btb_install(5, 99);
        assert_eq!(bp.btb_lookup(5), Some(99));
        // Aliased slot with wrong tag misses.
        assert_eq!(bp.btb_lookup(5 + 4096), None);
    }

    #[test]
    fn history_repair_on_mispredict() {
        let mut bp = BranchPredictor::default();
        let p = bp.predict_cond(3);
        // Speculative history appended the predicted bit.
        bp.mispredicted(p.history, !p.taken);
        assert_eq!(bp.history() & 1, (!p.taken) as u32);
        assert_eq!(bp.mispredicts(), 1);
    }

    #[test]
    fn ras_round_trip_and_depth() {
        let mut bp = BranchPredictor::new(BranchConfig { ras_depth: 2, ..BranchConfig::default() });
        bp.ras_push(1);
        bp.ras_push(2);
        bp.ras_push(3); // evicts 1
        assert_eq!(bp.ras_pop(), Some(3));
        assert_eq!(bp.ras_pop(), Some(2));
        assert_eq!(bp.ras_pop(), None);
    }

    #[test]
    fn alternating_pattern_with_history() {
        // With history, gshare learns alternation after warmup.
        let mut bp = BranchPredictor::default();
        let mut correct = 0;
        let mut outcome = false;
        for i in 0..200 {
            outcome = !outcome;
            let p = bp.predict_cond(50);
            if p.taken == outcome {
                if i >= 100 {
                    correct += 1;
                }
            } else {
                bp.mispredicted(p.history, outcome);
            }
            bp.resolve(50, outcome, 9, p.history);
        }
        assert!(correct > 90, "gshare should learn alternation, got {correct}/100");
    }
}
