use dmdp_isa::Pc;

/// Store Sets configuration (Chrysos & Emer, ISCA '98), used by the
/// baseline store-queue machine (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreSetsConfig {
    /// Store Set ID Table entries (power of two), indexed by PC.
    pub ssit_entries: usize,
    /// Last Fetched Store Table entries (one per store set ID).
    pub lfst_entries: usize,
}

impl Default for StoreSetsConfig {
    fn default() -> StoreSetsConfig {
        StoreSetsConfig { ssit_entries: 2048, lfst_entries: 128 }
    }
}

/// The Store Sets memory dependence predictor.
///
/// Loads and stores that have collided in the past are placed in the same
/// *store set*. At dispatch a load (or store) looks up its set and, if the
/// Last Fetched Store Table names an in-flight store of the same set, must
/// wait for it. Violations merge sets toward the smaller set ID.
///
/// Store instances are identified by caller-supplied tokens (dynamic
/// sequence numbers) so that squashes can be handled precisely.
///
/// # Example
///
/// ```
/// use dmdp_predict::StoreSets;
/// let mut ss = StoreSets::default();
/// assert_eq!(ss.load_dispatched(40), None); // never collided
/// ss.violation(40, 10);                     // load pc 40 hit store pc 10
/// ss.store_dispatched(10, 77);              // store instance 77 in flight
/// assert_eq!(ss.load_dispatched(40), Some(77));
/// ss.store_completed(10, 77);
/// assert_eq!(ss.load_dispatched(40), None);
/// ```
#[derive(Debug, Clone)]
pub struct StoreSets {
    cfg: StoreSetsConfig,
    ssit: Vec<Option<u16>>,
    lfst: Vec<Option<u64>>,
    next_ssid: u16,
    violations: u64,
}

impl Default for StoreSets {
    fn default() -> StoreSets {
        StoreSets::new(StoreSetsConfig::default())
    }
}

impl StoreSets {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics unless `ssit_entries` is a power of two and `lfst_entries`
    /// is nonzero.
    pub fn new(cfg: StoreSetsConfig) -> StoreSets {
        assert!(cfg.ssit_entries.is_power_of_two(), "SSIT entries must be a power of two");
        assert!(cfg.lfst_entries > 0, "LFST needs entries");
        StoreSets {
            ssit: vec![None; cfg.ssit_entries],
            lfst: vec![None; cfg.lfst_entries],
            cfg,
            next_ssid: 0,
            violations: 0,
        }
    }

    #[inline]
    fn ssit_index(&self, pc: Pc) -> usize {
        (pc as usize) & (self.cfg.ssit_entries - 1)
    }

    fn ssid(&self, pc: Pc) -> Option<u16> {
        self.ssit[self.ssit_index(pc)]
    }

    /// A store at `pc` (instance `token`) dispatches: returns the token of
    /// an older in-flight store it must order behind (store–store
    /// ordering within a set) and becomes its set's last fetched store.
    pub fn store_dispatched(&mut self, pc: Pc, token: u64) -> Option<u64> {
        let ssid = self.ssid(pc)?;
        let slot = ssid as usize % self.cfg.lfst_entries;
        let prior = self.lfst[slot];
        self.lfst[slot] = Some(token);
        prior
    }

    /// A load at `pc` dispatches: returns the in-flight store token it
    /// must wait for, if its set currently has one.
    pub fn load_dispatched(&mut self, pc: Pc) -> Option<u64> {
        let ssid = self.ssid(pc)?;
        self.lfst[ssid as usize % self.cfg.lfst_entries]
    }

    /// A store instance finished (executed at commit in this machine):
    /// clears the LFST slot if it still names this instance.
    pub fn store_completed(&mut self, pc: Pc, token: u64) {
        if let Some(ssid) = self.ssid(pc) {
            let slot = ssid as usize % self.cfg.lfst_entries;
            if self.lfst[slot] == Some(token) {
                self.lfst[slot] = None;
            }
        }
    }

    /// A store instance was squashed; identical cleanup to completion.
    pub fn store_squashed(&mut self, pc: Pc, token: u64) {
        self.store_completed(pc, token);
    }

    /// A memory-ordering violation between a load and a store: both PCs
    /// are placed in the same set (merging toward the smaller SSID, the
    /// usual simplification of the paper's set merge).
    pub fn violation(&mut self, load_pc: Pc, store_pc: Pc) {
        self.violations += 1;
        let li = self.ssit_index(load_pc);
        let si = self.ssit_index(store_pc);
        match (self.ssit[li], self.ssit[si]) {
            (None, None) => {
                let ssid = self.next_ssid;
                self.next_ssid = self.next_ssid.wrapping_add(1);
                self.ssit[li] = Some(ssid);
                self.ssit[si] = Some(ssid);
            }
            (Some(a), None) => self.ssit[si] = Some(a),
            (None, Some(b)) => self.ssit[li] = Some(b),
            (Some(a), Some(b)) => {
                let winner = a.min(b);
                self.ssit[li] = Some(winner);
                self.ssit[si] = Some(winner);
            }
        }
    }

    /// Violations observed (baseline memory-ordering mispredictions).
    pub fn violations(&self) -> u64 {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_pcs_predict_no_dependence() {
        let mut ss = StoreSets::default();
        assert_eq!(ss.load_dispatched(1), None);
        assert_eq!(ss.store_dispatched(2, 10), None);
    }

    #[test]
    fn violation_creates_dependence() {
        let mut ss = StoreSets::default();
        ss.violation(100, 200);
        ss.store_dispatched(200, 1);
        assert_eq!(ss.load_dispatched(100), Some(1));
    }

    #[test]
    fn store_store_ordering_within_set() {
        let mut ss = StoreSets::default();
        ss.violation(100, 200);
        ss.violation(100, 300); // both stores now share the load's set
        assert_eq!(ss.store_dispatched(200, 1), None);
        assert_eq!(ss.store_dispatched(300, 2), Some(1));
        assert_eq!(ss.load_dispatched(100), Some(2)); // youngest of set
    }

    #[test]
    fn completion_clears_only_matching_token() {
        let mut ss = StoreSets::default();
        ss.violation(100, 200);
        ss.store_dispatched(200, 1);
        ss.store_dispatched(200, 2); // newer instance of the same store
        ss.store_completed(200, 1); // stale clear: must not wipe token 2
        assert_eq!(ss.load_dispatched(100), Some(2));
        ss.store_completed(200, 2);
        assert_eq!(ss.load_dispatched(100), None);
    }

    #[test]
    fn merge_prefers_smaller_ssid() {
        let mut ss = StoreSets::default();
        ss.violation(1, 2); // ssid 0
        ss.violation(3, 4); // ssid 1
        ss.violation(1, 4); // merge: both end up in ssid 0
        assert_eq!(ss.ssid(1), Some(0));
        assert_eq!(ss.ssid(4), Some(0));
        assert_eq!(ss.violations(), 3);
    }

    #[test]
    fn squash_behaves_like_completion() {
        let mut ss = StoreSets::default();
        ss.violation(10, 20);
        ss.store_dispatched(20, 5);
        ss.store_squashed(20, 5);
        assert_eq!(ss.load_dispatched(10), None);
    }
}
