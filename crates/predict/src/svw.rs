//! Store Vulnerability Window re-execution filtering (paper §IV-A a,
//! Table II, and the partial-word decision tree of Fig. 11).
//!
//! At retire, a speculative load's value must be verified. Re-executing
//! every load would double cache bandwidth; SVW re-executes only when the
//! T-SSBF says a colliding store committed *after* the load read the
//! cache, or when a forwarded value cannot be proven to have come from
//! the right store.

use dmdp_isa::bab::covers;

use crate::tssbf::TssbfHit;
use crate::Ssn;

/// Where a retiring load's value came from (paper Table II's two rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// The load read the cache; `ssn_nvul` is the `SSN_commit` captured at
    /// execution time — the youngest store the load is *not* vulnerable
    /// to.
    Cache {
        /// Captured `SSN_commit`.
        ssn_nvul: Ssn,
    },
    /// The value was forwarded from a predicted in-flight store (memory
    /// cloaking, or a predication pair whose predicate was true).
    Forwarded {
        /// The predicted colliding store's SSN (`SSN_byp`).
        predicted_ssn: Ssn,
    },
}

/// Decides whether a retiring load must re-execute.
///
/// * **Cache-sourced** loads re-execute iff the actual colliding store's
///   SSN exceeds `ssn_nvul` (it committed after the load read the cache).
///   The conservative set-minimum returned on a T-SSBF tag miss applies
///   unchanged: if even the smallest SSN in the set is newer than
///   `ssn_nvul`, an evicted colliding entry could be too.
/// * **Forwarded** loads re-execute unless the T-SSBF confirms the actual
///   colliding store is exactly the predicted one *and* its bytes cover
///   the load's (Fig. 11: a partially-covering store means the value is
///   assembled from multiple stores, which forwarding cannot produce).
///
/// # Example
///
/// ```
/// use dmdp_predict::svw::{needs_reexecution, DataSource};
/// use dmdp_predict::TssbfHit;
/// // Load read the cache at SSN_commit = 10; a store with SSN 12
/// // committed afterwards: re-execute.
/// let hit = TssbfHit { ssn: 12, store_bab: Some(0b1111) };
/// assert!(needs_reexecution(DataSource::Cache { ssn_nvul: 10 }, hit, 0b1111));
/// // Same store but the load was already safe:
/// let hit = TssbfHit { ssn: 9, store_bab: Some(0b1111) };
/// assert!(!needs_reexecution(DataSource::Cache { ssn_nvul: 10 }, hit, 0b1111));
/// ```
pub fn needs_reexecution(source: DataSource, actual: TssbfHit, load_bab: u8) -> bool {
    match source {
        DataSource::Cache { ssn_nvul } => actual.ssn > ssn_nvul,
        DataSource::Forwarded { predicted_ssn } => match actual.store_bab {
            Some(store_bab) => actual.ssn != predicted_ssn || !covers(store_bab, load_bab),
            // Tag miss: the predicted store cannot be confirmed.
            None => true,
        },
    }
}

/// Whether a confirmed collision constitutes *partial-word* forwarding
/// that must fall back to re-execution (Fig. 11's right branch): the
/// store overlaps the load but does not cover every byte it needs.
pub fn partial_word_hazard(store_bab: u8, load_bab: u8) -> bool {
    store_bab & load_bab != 0 && !covers(store_bab, load_bab)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: u8 = 0b1111;

    #[test]
    fn cache_load_safe_when_store_older() {
        let hit = TssbfHit { ssn: 5, store_bab: Some(FULL) };
        assert!(!needs_reexecution(DataSource::Cache { ssn_nvul: 5 }, hit, FULL));
    }

    #[test]
    fn cache_load_reexecutes_when_store_newer() {
        let hit = TssbfHit { ssn: 6, store_bab: Some(FULL) };
        assert!(needs_reexecution(DataSource::Cache { ssn_nvul: 5 }, hit, FULL));
    }

    #[test]
    fn cache_load_conservative_on_tag_miss() {
        // Set minimum newer than nvul: an evicted entry could collide.
        let hit = TssbfHit { ssn: 9, store_bab: None };
        assert!(needs_reexecution(DataSource::Cache { ssn_nvul: 5 }, hit, FULL));
        let hit = TssbfHit { ssn: 3, store_bab: None };
        assert!(!needs_reexecution(DataSource::Cache { ssn_nvul: 5 }, hit, FULL));
    }

    #[test]
    fn forwarded_load_verified_by_exact_match() {
        let hit = TssbfHit { ssn: 7, store_bab: Some(FULL) };
        assert!(!needs_reexecution(DataSource::Forwarded { predicted_ssn: 7 }, hit, FULL));
        assert!(needs_reexecution(DataSource::Forwarded { predicted_ssn: 6 }, hit, FULL));
    }

    #[test]
    fn forwarded_load_reexecutes_on_tag_miss() {
        let hit = TssbfHit { ssn: 0, store_bab: None };
        assert!(needs_reexecution(DataSource::Forwarded { predicted_ssn: 7 }, hit, FULL));
    }

    #[test]
    fn forwarded_partial_cover_reexecutes() {
        // Store wrote only the low half; load reads the full word.
        let hit = TssbfHit { ssn: 7, store_bab: Some(0b0011) };
        assert!(needs_reexecution(DataSource::Forwarded { predicted_ssn: 7 }, hit, FULL));
        // Store covers exactly what the load reads: fine.
        let hit = TssbfHit { ssn: 7, store_bab: Some(0b0011) };
        assert!(!needs_reexecution(DataSource::Forwarded { predicted_ssn: 7 }, hit, 0b0011));
    }

    #[test]
    fn partial_word_hazard_cases() {
        assert!(partial_word_hazard(0b0011, 0b1111)); // overlap, no cover
        assert!(!partial_word_hazard(0b1111, 0b0011)); // covered
        assert!(!partial_word_hazard(0b0011, 0b1100)); // disjoint
    }
}
