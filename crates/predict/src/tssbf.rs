use dmdp_isa::bab::{overlaps, word_addr};
use dmdp_isa::Addr;

use crate::Ssn;

/// T-SSBF configuration. The paper's instance: 4-way, 128 entries total,
/// each entry a 20-bit SSN + 4-bit BAB + 25-bit tag (6.125 Kbit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TssbfConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Ways per set; each set is a FIFO of the last `ways` stores mapping
    /// to it.
    pub ways: usize,
}

impl Default for TssbfConfig {
    fn default() -> TssbfConfig {
        // The paper's instance is 32 sets × 4 ways (128 entries) sized
        // for SPEC's address diversity over 100M-instruction intervals.
        // Our kernels concentrate their footprints 100–1000× more, so the
        // default scales the set count to keep the *false re-execution
        // rate* (tag-miss conservatism) in the paper's regime; the
        // paper-exact geometry remains available via this config.
        TssbfConfig { sets: 128, ways: 4 }
    }
}

/// Result of a load's T-SSBF lookup at retire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TssbfHit {
    /// The SSN the load must compare against its `SSN_nvul`.
    pub ssn: Ssn,
    /// For an address match: the colliding store's Byte Access Bits.
    /// `None` means no matching address was found and `ssn` is the
    /// conservative set minimum (paper §IV-A b).
    pub store_bab: Option<u8>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    tag: u32,
    ssn: Ssn,
    bab: u8,
    /// Inserted by an external invalidation rather than a retiring
    /// store: forces re-execution but must never *confirm* a forwarded
    /// prediction (its SSN is synthetic).
    coherence: bool,
}

/// The Tagged Store Sequence Bloom Filter (paper §IV-A b).
///
/// An N-way set-associative structure indexed by hashed word address;
/// each set is a FIFO of the last N stores mapping to it. Retiring stores
/// insert `(addr, BAB, SSN)`; retiring loads look up their colliding
/// store's SSN:
///
/// * several matching addresses → the **largest** (youngest) SSN whose
///   BAB overlaps the load's,
/// * no matching address → the **smallest** SSN in the set (conservative:
///   an older colliding store may have been pushed out of the FIFO),
/// * empty set → 0 (no store can collide).
///
/// External cache-line invalidations insert `SSN_commit + 1` for every
/// word of the line so that in-flight loads re-execute (§IV-F).
#[derive(Debug, Clone)]
pub struct Tssbf {
    cfg: TssbfConfig,
    sets: Vec<Vec<Entry>>, // FIFO: index 0 oldest
    stores_inserted: u64,
    lookups: u64,
}

impl Tssbf {
    /// Creates an empty filter.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is a power of two and `ways` is nonzero.
    pub fn new(cfg: TssbfConfig) -> Tssbf {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.ways > 0, "ways must be nonzero");
        Tssbf {
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets],
            cfg,
            stores_inserted: 0,
            lookups: 0,
        }
    }

    #[inline]
    fn index(&self, addr: Addr) -> (usize, u32) {
        let w = word_addr(addr) >> 2;
        // Simple hash: fold the upper bits in so nearby pages spread out.
        let h = w ^ (w >> 7);
        ((h as usize) & (self.cfg.sets - 1), w)
    }

    /// Records a retiring store (`T-SSBF[st.addr] = st.SSN`).
    pub fn store_retired(&mut self, addr: Addr, bab: u8, ssn: Ssn) {
        self.insert(addr, bab, ssn, false);
    }

    fn insert(&mut self, addr: Addr, bab: u8, ssn: Ssn, coherence: bool) {
        self.stores_inserted += 1;
        let (set, tag) = self.index(addr);
        let fifo = &mut self.sets[set];
        if fifo.len() == self.cfg.ways {
            fifo.remove(0);
        }
        fifo.push(Entry { tag, ssn, bab, coherence });
    }

    /// Looks up the colliding store for a retiring load.
    pub fn lookup(&mut self, addr: Addr, load_bab: u8) -> TssbfHit {
        self.lookups += 1;
        let (set, tag) = self.index(addr);
        let fifo = &self.sets[set];
        let mut best: Option<Entry> = None;
        for e in fifo {
            if e.tag == tag && overlaps(e.bab, load_bab) && best.is_none_or(|b| e.ssn > b.ssn) {
                best = Some(*e);
            }
        }
        if let Some(e) = best {
            // A coherence marker carries a synthetic SSN: report it with
            // no BAB so forwarded loads re-execute instead of treating it
            // as a confirmed match (§IV-F).
            let store_bab = (!e.coherence).then_some(e.bab);
            return TssbfHit { ssn: e.ssn, store_bab };
        }
        // Conservative fallback: an older colliding store may have been
        // pushed out of the FIFO — but only if the FIFO has ever been
        // full; a set that still has free ways provably never evicted.
        let min = if fifo.len() < self.cfg.ways {
            0
        } else {
            fifo.iter().map(|e| e.ssn).min().unwrap_or(0)
        };
        TssbfHit { ssn: min, store_bab: None }
    }

    /// Handles an external invalidation of the cache line at `line_addr`
    /// (`line_bytes` long): every word of the line is marked with
    /// `ssn_commit + 1` so that loads executed before the invalidation
    /// re-execute if their addresses match (§IV-F).
    pub fn invalidate_line(&mut self, line_addr: Addr, line_bytes: u32, ssn_commit: Ssn) {
        let base = line_addr & !(line_bytes - 1);
        for w in (0..line_bytes).step_by(4) {
            self.insert(base + w, 0b1111, ssn_commit + 1, true);
        }
    }

    /// Stores inserted so far.
    pub fn stores_inserted(&self) -> u64 {
        self.stores_inserted
    }

    /// Lookups performed so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tssbf {
        Tssbf::new(TssbfConfig::default())
    }

    #[test]
    fn empty_lookup_returns_zero() {
        let mut f = t();
        assert_eq!(f.lookup(0x100, 0b1111), TssbfHit { ssn: 0, store_bab: None });
    }

    #[test]
    fn youngest_matching_ssn_wins() {
        let mut f = t();
        f.store_retired(0x100, 0b1111, 5);
        f.store_retired(0x100, 0b1111, 9);
        let hit = f.lookup(0x100, 0b0011);
        assert_eq!(hit.ssn, 9);
        assert_eq!(hit.store_bab, Some(0b1111));
    }

    #[test]
    fn bab_disjoint_is_not_a_match() {
        let mut f = Tssbf::new(TssbfConfig { sets: 1, ways: 2 });
        f.store_retired(0x100, 0b0011, 5); // lower half
        f.store_retired(0x200, 0b1111, 6); // fills the set
        let hit = f.lookup(0x102, 0b1100); // upper half of 0x100
        // Address word matches but bytes are disjoint: falls back to the
        // conservative set minimum (the set has been full).
        assert_eq!(hit.store_bab, None);
        assert_eq!(hit.ssn, 5);
    }

    #[test]
    fn not_full_set_proves_no_eviction() {
        let mut f = t();
        f.store_retired(0x100, 0b1111, 7);
        // The set has free ways: nothing was ever evicted, so a tag miss
        // safely reports "no collision" rather than the set minimum.
        let hit = f.lookup(0x100, 0); // zero BAB never overlaps
        assert_eq!(hit.store_bab, None);
        assert_eq!(hit.ssn, 0);
    }

    #[test]
    fn full_set_returns_set_minimum() {
        let mut f = Tssbf::new(TssbfConfig { sets: 1, ways: 2 });
        f.store_retired(0x100, 0b1111, 7);
        f.store_retired(0x200, 0b1111, 11);
        let hit = f.lookup(0x100, 0); // zero BAB never overlaps
        assert_eq!(hit.store_bab, None);
        assert_eq!(hit.ssn, 7);
    }

    #[test]
    fn fifo_eviction_keeps_last_n() {
        let mut f = Tssbf::new(TssbfConfig { sets: 1, ways: 2 });
        f.store_retired(0x100, 0b1111, 1);
        f.store_retired(0x200, 0b1111, 2);
        f.store_retired(0x300, 0b1111, 3); // evicts ssn 1
        let hit = f.lookup(0x100, 0b1111);
        // 0x100's entry was evicted: conservative minimum of the set.
        assert_eq!(hit.store_bab, None);
        assert_eq!(hit.ssn, 2);
    }

    #[test]
    fn partial_word_store_matches_overlapping_load() {
        let mut f = t();
        f.store_retired(0x102, 0b1100, 4); // SH at +2
        let hit = f.lookup(0x100, 0b1111); // LW of the whole word
        assert_eq!(hit.ssn, 4);
        assert_eq!(hit.store_bab, Some(0b1100));
    }

    #[test]
    fn invalidation_marks_every_word() {
        let mut f = t();
        f.invalidate_line(0x1000, 64, 10);
        for w in (0..64).step_by(4) {
            let hit = f.lookup(0x1000 + w, 0b1111);
            assert_eq!(hit.ssn, 11, "word {w} must carry ssn_commit+1");
        }
    }

    #[test]
    fn counters() {
        let mut f = t();
        f.store_retired(0x0, 0b1111, 1);
        f.lookup(0x0, 0b1111);
        assert_eq!(f.stores_inserted(), 1);
        assert_eq!(f.lookups(), 1);
    }
}
