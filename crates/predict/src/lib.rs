#![warn(missing_docs)]
//! # dmdp-predict
//!
//! The prediction and verification structures of the DMDP machine:
//!
//! * [`BranchPredictor`] — gshare + BTB + return-address stack, shared by
//!   every pipeline model,
//! * [`Tssbf`] — the Tagged Store Sequence Bloom Filter used at retire to
//!   find a load's actual colliding store (paper §IV-A b),
//! * [`DistancePredictor`] — the path-sensitive store distance predictor
//!   with embedded confidence, including the paper's biased
//!   divide-by-two confidence update (§IV-A d, §IV-E),
//! * [`svw`] — the Store Vulnerability Window re-execution filter rules
//!   (paper Table II and the partial-word decision tree of Fig. 11),
//! * [`StoreSets`] — the Store Sets dependence predictor used by the
//!   baseline store-queue machine (§V).

mod branch;
mod distance;
mod store_sets;
pub mod svw;
mod tssbf;

pub use branch::{BranchConfig, BranchPredictor};
pub use distance::{ConfidencePolicy, DistanceConfig, DistancePredictor, Prediction};
pub use store_sets::{StoreSets, StoreSetsConfig};
pub use tssbf::{Tssbf, TssbfConfig, TssbfHit};

/// Store sequence number: stores are numbered from 1 in rename order
/// (paper §IV). `0` means "before any store".
pub type Ssn = u32;
