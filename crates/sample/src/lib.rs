#![warn(missing_docs)]
//! # dmdp-sample
//!
//! SimPoint-style sampled simulation: turn a full detailed-simulation
//! job into a handful of representative-interval jobs plus weighted
//! recombination, cutting wall time by an order of magnitude while
//! staying within a couple of percent of the full-run IPC.
//!
//! The pipeline:
//!
//! 1. **Profile** — the `dmdp-isa` emulator slices execution into
//!    fixed-instruction intervals and emits one feature vector per
//!    interval (basic-block execution counts + store-distance
//!    histograms, [`dmdp_isa::IntervalFeatures`]).
//! 2. **Cluster** — [`kmeans::kmeans_auto_k`]: deterministic
//!    (dmdp-prng-seeded) k-means++ with a BIC-style choice of `k`;
//!    each cluster elects the member interval nearest its centroid as
//!    its representative, weighted by the instructions its cluster
//!    covers ([`SamplePlan`]).
//! 3. **Checkpoint** — a second emulator pass captures an
//!    architectural [`dmdp_isa::Checkpoint`] at each representative's
//!    warmup boundary ([`SampledBundle`]); checkpoints are
//!    model-independent, so one bundle serves every core model and
//!    configuration.
//! 4. **Measure & recombine** — the detailed simulator runs each
//!    representative interval from its checkpoint (warmup excluded
//!    from measurement) and [`recombine`] folds the per-interval
//!    (cycles, instructions) into a [`SampledReport`] via the
//!    *CPI-weighted* mean — the unbiased estimator for
//!    fixed-instruction intervals (a plain IPC mean over-weights fast
//!    intervals).

pub mod kmeans;

use dmdp_isa::{Checkpoint, EmuError, Emulator, IntervalProfile, Program, RunResult};
use dmdp_prng::Prng;

/// Dimensionality feature vectors are randomly projected down to
/// before clustering (the SimPoint trick: preserves relative distances
/// while making k-means cheap on kernels with thousands of basic
/// blocks).
pub const PROJECTED_DIMS: usize = 16;

/// Default clustering parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleParams {
    /// Interval length in dynamic instructions.
    pub interval_insns: u64,
    /// Intervals of detailed warmup simulated (and discarded) before
    /// each representative's measurement.
    pub warmup_intervals: u32,
    /// Largest `k` the BIC search considers.
    pub max_k: usize,
    /// Seed of the deterministic clustering stream.
    pub seed: u64,
    /// Emulator step budget for the profiling pass.
    pub max_steps: u64,
    /// Most-recently-touched cache lines each checkpoint carries as its
    /// cache-warming hint (LRU→MRU). The default covers one 1 MiB L2 of
    /// 64-byte lines — warming can only help up to the hierarchy's
    /// capacity.
    pub warm_lines_cap: usize,
    /// Floor on the detailed-warmup window in instructions. Even at
    /// `warmup_intervals = 0` each representative gets this much
    /// detailed simulation (discarded) before measurement — enough to
    /// fill the ROB, store buffer, and in-flight dependence training
    /// on top of the checkpoint's functional cache/branch warming,
    /// at a fraction of a full warmup interval's cost.
    pub min_warmup_insns: u64,
}

impl SampleParams {
    /// Defaults for everything but the interval length.
    pub fn new(interval_insns: u64, warmup_intervals: u32) -> SampleParams {
        SampleParams {
            interval_insns,
            warmup_intervals,
            max_k: 12,
            seed: 0xD3D9_5A3B,
            max_steps: 20_000_000_000,
            warm_lines_cap: 16_384,
            min_warmup_insns: 2_048,
        }
    }
}

/// One elected representative interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Representative {
    /// Index of the representative interval.
    pub interval: u64,
    /// Fraction of the program's dynamic instructions its cluster
    /// covers (weights sum to 1).
    pub weight: f64,
    /// Number of intervals in its cluster.
    pub cluster_size: u64,
}

/// The output of the clustering stage: which intervals to simulate in
/// detail, and with what weights.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePlan {
    /// Interval length in dynamic instructions.
    pub interval_insns: u64,
    /// Total number of profiled intervals.
    pub total_intervals: u64,
    /// Total dynamic instructions in the full run.
    pub total_insns: u64,
    /// Number of clusters the BIC search settled on.
    pub k: usize,
    /// Representatives, sorted by interval index.
    pub reps: Vec<Representative>,
}

/// Builds the per-interval dense feature matrix: concatenated
/// L1-normalized basic-block and dependence-class vectors, randomly
/// projected to [`PROJECTED_DIMS`] with a deterministic ±1 matrix.
fn vectorize(profile: &IntervalProfile, seed: u64) -> Vec<Vec<f64>> {
    // Global column index for every basic-block leader seen anywhere.
    let mut columns: Vec<u32> = profile
        .intervals
        .iter()
        .flat_map(|iv| iv.bb_counts.iter().map(|&(pc, _)| pc))
        .collect();
    columns.sort_unstable();
    columns.dedup();
    let col_of = |pc: u32| columns.binary_search(&pc).expect("column exists");
    // Two locality dimensions ride after the dependence buckets:
    // first-touch lines and distinct lines, L1-normalized as a pair.
    // Basic-block vectors are address-blind — without these, a cold
    // first pass over an array and the cache-resident later passes are
    // indistinguishable (identical blocks, very different CPI).
    const LOC_DIMS: usize = 2;
    let full_dims = columns.len() + dmdp_isa::checkpoint::DEP_BUCKETS + LOC_DIMS;

    // One fixed ±1 projection per column, shared by every interval.
    let mut prng = Prng::new(seed);
    let project = full_dims > PROJECTED_DIMS;
    let dims = if project { PROJECTED_DIMS } else { full_dims };
    let signs: Vec<Vec<f64>> = (0..full_dims)
        .map(|_| (0..dims).map(|_| if prng.flip() { 1.0 } else { -1.0 }).collect())
        .collect();

    profile
        .intervals
        .iter()
        .map(|iv| {
            let mut full = vec![0.0; full_dims];
            let bb_total: f64 = iv.bb_counts.iter().map(|&(_, c)| c as f64).sum();
            for &(pc, c) in &iv.bb_counts {
                full[col_of(pc)] = c as f64 / bb_total.max(1.0);
            }
            let dep_total: f64 = iv.dep_buckets.iter().map(|&c| c as f64).sum();
            for (slot, &c) in full[columns.len()..].iter_mut().zip(&iv.dep_buckets) {
                *slot = c as f64 / dep_total.max(1.0);
            }
            let loc_total = (iv.new_lines + iv.touched_lines) as f64;
            full[full_dims - 2] = iv.new_lines as f64 / loc_total.max(1.0);
            full[full_dims - 1] = iv.touched_lines as f64 / loc_total.max(1.0);
            if !project {
                return full;
            }
            let mut v = vec![0.0; dims];
            for (x, row) in full.iter().zip(&signs) {
                if *x != 0.0 {
                    for (slot, s) in v.iter_mut().zip(row) {
                        *slot += x * s;
                    }
                }
            }
            v
        })
        .collect()
}

/// Clusters a profile into a [`SamplePlan`].
///
/// # Panics
///
/// Panics if the profile has no intervals.
pub fn cluster(profile: &IntervalProfile, params: &SampleParams) -> SamplePlan {
    assert!(!profile.intervals.is_empty(), "cannot cluster an empty profile");
    let data = vectorize(profile, params.seed);
    let km = kmeans::kmeans_auto_k(&data, params.max_k, &mut Prng::new(params.seed ^ 0x5EED));

    let total_insns: u64 = profile.intervals.iter().map(|iv| iv.insns).sum();
    let mut reps: Vec<Representative> = Vec::with_capacity(km.k);
    for c in 0..km.k {
        let members: Vec<usize> =
            (0..data.len()).filter(|&i| km.assignments[i] == c).collect();
        let center = &km.centers[c];
        let rep = *members
            .iter()
            .min_by(|&&a, &&b| {
                let da: f64 = data[a].iter().zip(center).map(|(x, y)| (x - y) * (x - y)).sum();
                let db: f64 = data[b].iter().zip(center).map(|(x, y)| (x - y) * (x - y)).sum();
                da.total_cmp(&db).then(a.cmp(&b))
            })
            .expect("clusters are non-empty");
        let cluster_insns: u64 = members.iter().map(|&i| profile.intervals[i].insns).sum();
        reps.push(Representative {
            interval: rep as u64,
            weight: cluster_insns as f64 / total_insns as f64,
            cluster_size: members.len() as u64,
        });
    }
    reps.sort_by_key(|r| r.interval);
    SamplePlan {
        interval_insns: profile.interval_insns,
        total_intervals: profile.intervals.len() as u64,
        total_insns,
        k: km.k,
        reps,
    }
}

/// One representative's detailed-simulation work order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepRun {
    /// The representative interval's index.
    pub interval: u64,
    /// Recombination weight.
    pub weight: f64,
    /// Index into [`SampledBundle::checkpoints`] to start from.
    pub ckpt: usize,
    /// Instructions of detailed warmup before measurement starts.
    pub warmup_insns: u64,
    /// Instructions to measure (a full interval, except the final
    /// partial one).
    pub measure_insns: u64,
}

/// A plan plus the architectural checkpoints it needs: everything the
/// detailed simulator requires to run a workload sampled. Bundles are
/// model- and configuration-independent — build once per (workload,
/// interval length), simulate every model from it.
#[derive(Debug, Clone)]
pub struct SampledBundle {
    /// Warmup intervals ahead of each representative.
    pub warmup_intervals: u32,
    /// Resolved detailed-warmup window in instructions:
    /// `max(warmup_intervals × interval_insns, min_warmup_insns)`,
    /// clipped per representative to the instructions available before
    /// it. The floor keeps a short detailed warmup even at
    /// `warmup_intervals = 0` — the checkpoint's functional warming
    /// seeds caches and the branch predictor, so detailed warmup only
    /// needs to fill pipeline-local state (ROB, store buffer,
    /// in-flight dependence training), which takes a couple of
    /// thousand instructions, not a whole interval.
    pub warmup_insns: u64,
    /// The clustering result.
    pub plan: SamplePlan,
    /// Unique checkpoints, ascending by position; [`RepRun::ckpt`]
    /// indexes into this (representatives whose warmup windows overlap
    /// share a checkpoint).
    pub checkpoints: Vec<Checkpoint>,
    /// Full-run statistics from the profiling pass.
    pub profile_result: RunResult,
}

impl SampledBundle {
    /// Profiles, clusters, and captures checkpoints for `program`.
    ///
    /// # Errors
    ///
    /// Emulation errors from the profiling or capture pass,
    /// stringified — including the named budget error if the program
    /// does not halt within `params.max_steps`.
    pub fn build(program: &Program, params: &SampleParams) -> Result<SampledBundle, String> {
        let profile = Emulator::new(program)
            .profile_intervals(params.interval_insns, params.max_steps)
            .map_err(|e: EmuError| format!("{}: profiling failed: {e}", program.name()))?;
        let plan = cluster(&profile, params);
        let warmup_insns = (params.warmup_intervals as u64 * params.interval_insns)
            .max(params.min_warmup_insns);
        let mut boundaries: Vec<u64> = plan
            .reps
            .iter()
            .map(|r| (r.interval * params.interval_insns).saturating_sub(warmup_insns))
            .collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        let checkpoints = Emulator::new(program)
            .capture_checkpoints(&boundaries, params.warm_lines_cap)
            .map_err(|e| format!("{}: checkpoint capture failed: {e}", program.name()))?;
        Ok(SampledBundle {
            warmup_intervals: params.warmup_intervals,
            warmup_insns,
            plan,
            checkpoints,
            profile_result: profile.result,
        })
    }

    /// The detailed-simulation work orders, one per representative.
    pub fn rep_runs(&self) -> Vec<RepRun> {
        let il = self.plan.interval_insns;
        self.plan
            .reps
            .iter()
            .map(|r| {
                let rep_start = r.interval * il;
                let boundary = rep_start.saturating_sub(self.warmup_insns);
                let ckpt = self
                    .checkpoints
                    .binary_search_by_key(&boundary, |c| c.result.retired)
                    .expect("a checkpoint exists for every rep boundary");
                RepRun {
                    interval: r.interval,
                    weight: r.weight,
                    ckpt,
                    warmup_insns: rep_start - boundary,
                    measure_insns: il.min(self.plan.total_insns - rep_start),
                }
            })
            .collect()
    }

    /// Total serialized checkpoint payload in bytes.
    pub fn checkpoint_bytes(&self) -> u64 {
        self.checkpoints.iter().map(|c| c.byte_len() as u64).sum()
    }

    /// Canonical byte serialization (round-trips through
    /// [`SampledBundle::from_bytes`]) — the daemon persists bundles in
    /// its content-addressed store so checkpoints are captured once
    /// per (workload, interval length) across restarts.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"DMDPSMB1");
        out.extend_from_slice(&self.warmup_intervals.to_le_bytes());
        out.extend_from_slice(&self.warmup_insns.to_le_bytes());
        out.extend_from_slice(&self.plan.interval_insns.to_le_bytes());
        out.extend_from_slice(&self.plan.total_intervals.to_le_bytes());
        out.extend_from_slice(&self.plan.total_insns.to_le_bytes());
        out.extend_from_slice(&(self.plan.k as u32).to_le_bytes());
        out.extend_from_slice(&(self.plan.reps.len() as u32).to_le_bytes());
        for r in &self.plan.reps {
            out.extend_from_slice(&r.interval.to_le_bytes());
            out.extend_from_slice(&r.weight.to_bits().to_le_bytes());
            out.extend_from_slice(&r.cluster_size.to_le_bytes());
        }
        for v in [
            self.profile_result.retired,
            self.profile_result.loads,
            self.profile_result.stores,
            self.profile_result.branches,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.checkpoints.len() as u32).to_le_bytes());
        for c in &self.checkpoints {
            let bytes = c.to_bytes();
            out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// Deserializes a bundle produced by [`SampledBundle::to_bytes`].
    ///
    /// # Errors
    ///
    /// A human-readable message on a bad magic or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<SampledBundle, String> {
        let mut at = 0usize;
        let mut take = |n: usize| -> Result<&[u8], String> {
            let end = at.checked_add(n).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| format!("bundle truncated at byte {at}"))?;
            let s = &bytes[at..end];
            at = end;
            Ok(s)
        };
        if take(8)? != b"DMDPSMB1" {
            return Err("not a dmdp sample bundle (bad magic)".into());
        }
        let u32_of = |s: &[u8]| u32::from_le_bytes(s.try_into().unwrap());
        let u64_of = |s: &[u8]| u64::from_le_bytes(s.try_into().unwrap());
        let warmup_intervals = u32_of(take(4)?);
        let warmup_insns = u64_of(take(8)?);
        let interval_insns = u64_of(take(8)?);
        let total_intervals = u64_of(take(8)?);
        let total_insns = u64_of(take(8)?);
        let k = u32_of(take(4)?) as usize;
        let n_reps = u32_of(take(4)?) as usize;
        let mut reps = Vec::with_capacity(n_reps);
        for _ in 0..n_reps {
            reps.push(Representative {
                interval: u64_of(take(8)?),
                weight: f64::from_bits(u64_of(take(8)?)),
                cluster_size: u64_of(take(8)?),
            });
        }
        let profile_result = RunResult {
            retired: u64_of(take(8)?),
            loads: u64_of(take(8)?),
            stores: u64_of(take(8)?),
            branches: u64_of(take(8)?),
        };
        let n_ckpts = u32_of(take(4)?) as usize;
        let mut checkpoints = Vec::with_capacity(n_ckpts);
        for _ in 0..n_ckpts {
            let len = u64_of(take(8)?) as usize;
            checkpoints.push(Checkpoint::from_bytes(take(len)?)?);
        }
        if at != bytes.len() {
            return Err(format!("{} trailing bytes after bundle", bytes.len() - at));
        }
        Ok(SampledBundle {
            warmup_intervals,
            warmup_insns,
            plan: SamplePlan { interval_insns, total_intervals, total_insns, k, reps },
            checkpoints,
            profile_result,
        })
    }
}

/// The detailed measurement of one representative interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalMeasurement {
    /// The representative interval's index.
    pub interval: u64,
    /// Recombination weight.
    pub weight: f64,
    /// Cycles the detailed simulator spent in the measured window.
    pub cycles: u64,
    /// Instructions retired in the measured window.
    pub insns: u64,
}

/// The recombined estimate of a full run from sampled measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledReport {
    /// Estimated whole-run IPC.
    pub ipc: f64,
    /// Estimated whole-run CPI (`1 / ipc`).
    pub cpi: f64,
    /// Estimated whole-run cycle count (`cpi × total_insns`).
    pub est_cycles: u64,
    /// Dynamic instructions in the full run (from the profile).
    pub total_insns: u64,
    /// Intervals the profile sliced the run into.
    pub intervals_total: u64,
    /// Intervals actually simulated in detail.
    pub intervals_simulated: u64,
    /// The raw per-representative measurements.
    pub measurements: Vec<IntervalMeasurement>,
}

impl SampledReport {
    /// Signed relative IPC error versus a full-simulation reference,
    /// as a percentage (`+` = the sample over-estimates IPC).
    pub fn error_vs(&self, full_ipc: f64) -> f64 {
        (self.ipc - full_ipc) / full_ipc * 100.0
    }
}

/// Folds per-representative measurements into a [`SampledReport`].
///
/// Uses the CPI-weighted mean: `CPI_est = Σ wⱼ · cyclesⱼ/insnsⱼ`,
/// `IPC_est = 1 / CPI_est`. With fixed-instruction intervals the
/// per-instruction cost is what the weights (instruction fractions)
/// average linearly; averaging IPC directly would over-weight fast
/// intervals.
///
/// # Panics
///
/// Panics if `measurements` is empty or a measurement retired zero
/// instructions.
pub fn recombine(plan: &SamplePlan, measurements: Vec<IntervalMeasurement>) -> SampledReport {
    assert!(!measurements.is_empty(), "cannot recombine zero measurements");
    let weight_total: f64 = measurements.iter().map(|m| m.weight).sum();
    let mut cpi = 0.0;
    for m in &measurements {
        assert!(m.insns > 0, "measurement of interval {} retired nothing", m.interval);
        cpi += m.weight / weight_total * (m.cycles as f64 / m.insns as f64);
    }
    SampledReport {
        ipc: 1.0 / cpi,
        cpi,
        est_cycles: (cpi * plan.total_insns as f64).round() as u64,
        total_insns: plan.total_insns,
        intervals_total: plan.total_intervals,
        intervals_simulated: measurements.len() as u64,
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdp_isa::asm::assemble;

    fn phased_program() -> Program {
        // Two phases with very different dependence behaviour: a
        // store→load ping-pong loop, then a pure ALU loop.
        assemble(
            r#"
                .data
            buf: .space 64
                .text
                li   $1, 200
                lui  $8, %hi(buf)
                ori  $8, $8, %lo(buf)
            mem:
                sw   $1, 0($8)
                lw   $2, 0($8)
                add  $3, $3, $2
                addi $1, $1, -1
                bgtz $1, mem
                li   $1, 200
            alu:
                add  $4, $4, $1
                xor  $5, $5, $4
                addi $1, $1, -1
                bgtz $1, alu
                halt
            "#,
        )
        .unwrap()
    }

    #[test]
    fn bundle_build_and_round_trip() {
        let p = phased_program();
        let params = SampleParams { max_k: 4, ..SampleParams::new(100, 1) };
        let b = SampledBundle::build(&p, &params).unwrap();
        assert!(b.plan.k >= 1 && b.plan.reps.len() == b.plan.k);
        let w: f64 = b.plan.reps.iter().map(|r| r.weight).sum();
        assert!((w - 1.0).abs() < 1e-9, "weights sum to {w}");
        assert!(!b.checkpoints.is_empty());
        assert!(b.checkpoint_bytes() > 0);

        let c = SampledBundle::from_bytes(&b.to_bytes()).unwrap();
        assert_eq!(c.plan, b.plan);
        assert_eq!(c.checkpoints, b.checkpoints);
        assert_eq!(c.profile_result, b.profile_result);
        assert!(SampledBundle::from_bytes(&b.to_bytes()[..10]).is_err());
    }

    #[test]
    fn rep_runs_cover_their_intervals() {
        let p = phased_program();
        let params = SampleParams { max_k: 4, ..SampleParams::new(100, 1) };
        let b = SampledBundle::build(&p, &params).unwrap();
        let runs = b.rep_runs();
        assert_eq!(runs.len(), b.plan.reps.len());
        for r in &runs {
            let ckpt = &b.checkpoints[r.ckpt];
            // The checkpoint plus warmup lands exactly on the rep.
            assert_eq!(
                ckpt.result.retired + r.warmup_insns,
                r.interval * b.plan.interval_insns
            );
            assert!(r.measure_insns > 0 && r.measure_insns <= b.plan.interval_insns);
            // Warmup is at most the resolved window (interval count,
            // floored at the micro-warmup minimum), clipped to the
            // instructions before the rep.
            assert!(r.warmup_insns <= b.warmup_insns);
            assert_eq!(
                r.warmup_insns,
                b.warmup_insns.min(r.interval * b.plan.interval_insns)
            );
        }
    }

    #[test]
    fn emulated_sampled_cpi_matches_full_for_uniform_cost() {
        // Measure representatives with the *functional* emulator (1
        // insn = 1 "cycle"): any weighting must then estimate CPI = 1.
        let p = phased_program();
        let params = SampleParams { max_k: 4, ..SampleParams::new(100, 1) };
        let b = SampledBundle::build(&p, &params).unwrap();
        let measurements: Vec<IntervalMeasurement> = b
            .rep_runs()
            .iter()
            .map(|r| {
                let mut e = Emulator::from_checkpoint(&p, &b.checkpoints[r.ckpt]);
                e.run_insns(r.warmup_insns).unwrap();
                let before = e.stats().retired;
                e.run_insns(r.measure_insns).unwrap();
                IntervalMeasurement {
                    interval: r.interval,
                    weight: r.weight,
                    cycles: r.measure_insns,
                    insns: e.stats().retired - before,
                }
            })
            .collect();
        let report = recombine(&b.plan, measurements);
        assert!((report.cpi - 1.0).abs() < 1e-9);
        assert_eq!(report.est_cycles, report.total_insns);
        assert_eq!(report.intervals_total, b.plan.total_intervals);
        assert!(report.error_vs(1.0).abs() < 1e-9);
    }

    #[test]
    fn cluster_separates_the_two_phases() {
        let p = phased_program();
        let mut e = Emulator::new(&p);
        let profile = e.profile_intervals(100, 1_000_000).unwrap();
        let plan = cluster(&profile, &SampleParams { max_k: 6, ..SampleParams::new(100, 0) });
        // The memory phase and the ALU phase must not share one
        // representative.
        assert!(plan.k >= 2, "k = {}", plan.k);
        assert_eq!(plan.total_insns, profile.result.retired);
    }
}
