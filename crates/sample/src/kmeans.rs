//! Offline k-means for interval feature vectors.
//!
//! k-means++ seeding + Lloyd iterations, driven entirely by the
//! repository's deterministic [`dmdp_prng::Prng`] — same seed, same
//! clustering, on every platform. `k` is chosen by a BIC-style score
//! (the X-means spherical-Gaussian formulation SimPoint uses): the
//! smallest `k` whose score reaches 90% of the best score's range,
//! which prefers few representative intervals unless more genuinely
//! explain the data.

use dmdp_prng::Prng;

/// A clustering of `n` vectors into `k` groups.
#[derive(Debug, Clone)]
pub struct Kmeans {
    /// Cluster index of each input vector.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centers: Vec<Vec<f64>>,
    /// Number of clusters actually produced (≤ requested `k`).
    pub k: usize,
    /// Sum of squared distances to assigned centroids.
    pub sse: f64,
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A uniform f64 in `[0, 1)` from the deterministic stream.
fn unit(prng: &mut Prng) -> f64 {
    (prng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs k-means++ seeding plus Lloyd iterations (at most `max_iters`,
/// stopping early on a stable assignment).
///
/// # Panics
///
/// Panics if `data` is empty or `k` is zero.
pub fn kmeans(data: &[Vec<f64>], k: usize, prng: &mut Prng, max_iters: usize) -> Kmeans {
    assert!(!data.is_empty() && k > 0, "kmeans needs data and k > 0");
    let k = k.min(data.len());
    let dims = data[0].len();

    // k-means++ seeding: first center uniform, then proportional to
    // squared distance from the nearest chosen center.
    let mut centers: Vec<Vec<f64>> = vec![data[prng.index(data.len())].clone()];
    let mut d2: Vec<f64> = data.iter().map(|v| dist2(v, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // Every remaining point coincides with a center; any pick
            // will produce an empty-cluster-free result below.
            prng.index(data.len())
        } else {
            let mut r = unit(prng) * total;
            let mut pick = data.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if r < w {
                    pick = i;
                    break;
                }
                r -= w;
            }
            pick
        };
        let center = data[next].clone();
        for (slot, v) in d2.iter_mut().zip(data) {
            *slot = slot.min(dist2(v, &center));
        }
        centers.push(center);
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; data.len()];
    for _ in 0..max_iters {
        let mut changed = false;
        for (slot, v) in assignments.iter_mut().zip(data) {
            let best = centers
                .iter()
                .enumerate()
                .map(|(j, c)| (j, dist2(v, c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(j, _)| j)
                .unwrap();
            if *slot != best {
                *slot = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dims]; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (&a, v) in assignments.iter().zip(data) {
            counts[a] += 1;
            for (s, x) in sums[a].iter_mut().zip(v) {
                *s += x;
            }
        }
        for ((center, sum), &count) in centers.iter_mut().zip(&sums).zip(&counts) {
            if count > 0 {
                *center = sum.iter().map(|s| s / count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }

    // Drop empty clusters and renumber densely.
    let mut remap = vec![usize::MAX; centers.len()];
    let mut kept: Vec<Vec<f64>> = Vec::new();
    for &a in &assignments {
        if remap[a] == usize::MAX {
            remap[a] = kept.len();
            kept.push(centers[a].clone());
        }
    }
    for a in &mut assignments {
        *a = remap[*a];
    }
    let sse = assignments.iter().zip(data).map(|(&a, v)| dist2(v, &kept[a])).sum();
    Kmeans { k: kept.len(), centers: kept, assignments, sse }
}

/// The X-means BIC score of a clustering: spherical-Gaussian
/// log-likelihood minus the `(p/2)·ln n` parameter penalty. Higher is
/// better; comparable only across clusterings of the *same* data.
pub fn bic(data: &[Vec<f64>], km: &Kmeans) -> f64 {
    let n = data.len() as f64;
    let d = data[0].len() as f64;
    let k = km.k as f64;
    // Maximum-likelihood spherical variance, floored so that a perfect
    // clustering (sse = 0) stays finite.
    let variance = (km.sse / (n - k).max(1.0)).max(1e-12);
    let mut counts = vec![0usize; km.k];
    for &a in &km.assignments {
        counts[a] += 1;
    }
    let mut ll = -(n * d / 2.0) * (2.0 * std::f64::consts::PI * variance).ln() - (n - k) / 2.0;
    for &c in &counts {
        if c > 0 {
            ll += c as f64 * ((c as f64).ln() - n.ln());
        }
    }
    let params = k * (d + 1.0);
    ll - (params / 2.0) * n.ln()
}

/// Clusters `data` for every `k` in `1..=max_k` and returns the
/// clustering with the smallest `k` whose BIC reaches 90% of the way
/// from the worst to the best observed score (the SimPoint rule).
pub fn kmeans_auto_k(data: &[Vec<f64>], max_k: usize, prng: &mut Prng) -> Kmeans {
    let max_k = max_k.clamp(1, data.len());
    let runs: Vec<(Kmeans, f64)> = (1..=max_k)
        .map(|k| {
            let km = kmeans(data, k, prng, 50);
            let score = bic(data, &km);
            (km, score)
        })
        .collect();
    let best = runs.iter().map(|&(_, s)| s).fold(f64::NEG_INFINITY, f64::max);
    let worst = runs.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
    let threshold = worst + 0.9 * (best - worst);
    runs.into_iter()
        .find(|&(_, s)| s >= threshold)
        .map(|(km, _)| km)
        .expect("at least one clustering")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(prng: &mut Prng, center: &[f64], n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                center
                    .iter()
                    .map(|&c| c + (unit(prng) - 0.5) * 0.1)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn separable_blobs_are_separated() {
        let mut prng = Prng::new(1);
        let mut data = blob(&mut prng, &[0.0, 0.0, 0.0], 20);
        data.extend(blob(&mut prng, &[10.0, 0.0, 0.0], 20));
        data.extend(blob(&mut prng, &[0.0, 10.0, 0.0], 20));
        let km = kmeans(&data, 3, &mut Prng::new(7), 50);
        assert_eq!(km.k, 3);
        // Points from one blob share an assignment.
        for chunk in km.assignments.chunks(20) {
            assert!(chunk.iter().all(|&a| a == chunk[0]));
        }
        assert!(km.sse < 1.0, "sse = {}", km.sse);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let mut prng = Prng::new(3);
        let data = blob(&mut prng, &[1.0, 2.0], 30);
        let a = kmeans(&data, 4, &mut Prng::new(9), 50);
        let b = kmeans(&data, 4, &mut Prng::new(9), 50);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centers, b.centers);
    }

    #[test]
    fn auto_k_finds_few_clusters_for_few_blobs() {
        let mut prng = Prng::new(5);
        let mut data = blob(&mut prng, &[0.0, 0.0], 30);
        data.extend(blob(&mut prng, &[8.0, 8.0], 30));
        let km = kmeans_auto_k(&data, 10, &mut Prng::new(11));
        assert!((2..=4).contains(&km.k), "k = {}", km.k);
    }

    #[test]
    fn degenerate_identical_points() {
        let data = vec![vec![1.0, 1.0]; 10];
        let km = kmeans_auto_k(&data, 5, &mut Prng::new(2));
        assert_eq!(km.k, 1);
        assert_eq!(km.sse, 0.0);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = vec![vec![0.0], vec![1.0]];
        let km = kmeans(&data, 8, &mut Prng::new(4), 50);
        assert!(km.k <= 2);
    }
}
