#![warn(missing_docs)]
//! # dmdp-energy
//!
//! An event-based dynamic-energy model standing in for the paper's
//! modified McPAT 1.4 (§V). The paper's power claims are *relative*
//! (Figure 15 normalizes DMDP's EDP to NoSQ's), and relative EDP is
//! driven by event counts: DMDP executes extra `CMP`/`CMOV` µops but
//! avoids recoveries, delayed-load bookkeeping, and — versus the baseline
//! — the associative store-queue search on every load. The pipeline
//! records one [`Event`] per structure access; this crate prices them.
//!
//! The per-event energies are documented constants with McPAT-like
//! relative magnitudes: CAM searches cost several RAM reads, DRAM dwarfs
//! everything, and small tables (T-SSBF, predictors) are cheap.
//!
//! # Example
//!
//! ```
//! use dmdp_energy::{EnergyModel, Event};
//! let mut e = EnergyModel::new();
//! e.record(Event::AluOp, 100);
//! e.record(Event::DramAccess, 1);
//! assert!(e.total_nj() > 15.0); // one DRAM access alone costs 15 nJ
//! let edp = e.edp(1_000);
//! assert!(edp > 0.0);
//! ```

use std::fmt;

/// A dynamic-energy event. Each variant corresponds to one access of a
/// micro-architectural structure.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Event {
    /// Instruction fetched from the I-cache.
    Fetch,
    /// Instruction decoded / µop-expanded.
    Decode,
    /// µop renamed (RAT read/write, free-list pop).
    Rename,
    /// µop written into the issue queue.
    IqWrite,
    /// Issue-queue wakeup/select activity for one issued µop.
    IqWakeup,
    /// Physical register file read port use.
    PrfRead,
    /// Physical register file write port use.
    PrfWrite,
    /// ALU / AGU / CMP / CMOV execution.
    AluOp,
    /// L1D read (demand load or re-execution).
    CacheRead,
    /// L1D write (committing store).
    CacheWrite,
    /// L2 access (either direction).
    L2Access,
    /// DRAM access.
    DramAccess,
    /// Associative store-queue search (baseline only; the expensive CAM
    /// the store-queue-free designs delete).
    SqSearch,
    /// Store-queue/load-queue entry write (baseline only).
    SqWrite,
    /// T-SSBF probe (NoSQ/DMDP retire-time verification).
    TssbfRead,
    /// T-SSBF insert (NoSQ/DMDP store retire).
    TssbfWrite,
    /// Dependence/branch predictor table read.
    PredictorRead,
    /// Dependence/branch predictor table update.
    PredictorWrite,
    /// ROB entry write/read pair over a µop's lifetime.
    Rob,
    /// Data TLB lookup (AGI µops).
    TlbAccess,
    /// Store-buffer insert/drain bookkeeping.
    StoreBufferOp,
    /// One squashed µop during a pipeline recovery (wasted work plus
    /// RAT/counter repair activity).
    SquashedUop,
}

impl Event {
    /// Every event kind, for iteration/reporting.
    pub const ALL: [Event; 22] = [
        Event::Fetch,
        Event::Decode,
        Event::Rename,
        Event::IqWrite,
        Event::IqWakeup,
        Event::PrfRead,
        Event::PrfWrite,
        Event::AluOp,
        Event::CacheRead,
        Event::CacheWrite,
        Event::L2Access,
        Event::DramAccess,
        Event::SqSearch,
        Event::SqWrite,
        Event::TssbfRead,
        Event::TssbfWrite,
        Event::PredictorRead,
        Event::PredictorWrite,
        Event::Rob,
        Event::TlbAccess,
        Event::StoreBufferOp,
        Event::SquashedUop,
    ];

    /// Energy per occurrence in nanojoules.
    ///
    /// Relative magnitudes follow McPAT-style intuition for a ~4 GHz
    /// 8-wide core: wide CAMs ≫ small RAMs, DRAM ≫ everything on-chip.
    pub fn nanojoules(self) -> f64 {
        match self {
            Event::Fetch => 0.050,
            Event::Decode => 0.030,
            Event::Rename => 0.060,
            Event::IqWrite => 0.040,
            Event::IqWakeup => 0.030,
            Event::PrfRead => 0.030,
            Event::PrfWrite => 0.040,
            Event::AluOp => 0.100,
            Event::CacheRead => 0.200,
            Event::CacheWrite => 0.250,
            Event::L2Access => 0.900,
            Event::DramAccess => 15.000,
            Event::SqSearch => 0.300,
            Event::SqWrite => 0.060,
            Event::TssbfRead => 0.040,
            Event::TssbfWrite => 0.040,
            Event::PredictorRead => 0.020,
            Event::PredictorWrite => 0.020,
            Event::Rob => 0.030,
            Event::TlbAccess => 0.020,
            Event::StoreBufferOp => 0.040,
            Event::SquashedUop => 0.150,
        }
    }

    fn index(self) -> usize {
        Event::ALL.iter().position(|e| *e == self).expect("event in ALL")
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Event::Fetch => "fetch",
            Event::Decode => "decode",
            Event::Rename => "rename",
            Event::IqWrite => "iq-write",
            Event::IqWakeup => "iq-wakeup",
            Event::PrfRead => "prf-read",
            Event::PrfWrite => "prf-write",
            Event::AluOp => "alu",
            Event::CacheRead => "l1-read",
            Event::CacheWrite => "l1-write",
            Event::L2Access => "l2",
            Event::DramAccess => "dram",
            Event::SqSearch => "sq-search",
            Event::SqWrite => "sq-write",
            Event::TssbfRead => "tssbf-read",
            Event::TssbfWrite => "tssbf-write",
            Event::PredictorRead => "pred-read",
            Event::PredictorWrite => "pred-write",
            Event::Rob => "rob",
            Event::TlbAccess => "tlb",
            Event::StoreBufferOp => "store-buffer",
            Event::SquashedUop => "squashed-uop",
        }
    }
}

/// Accumulates event counts and prices them.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct EnergyModel {
    counts: [u64; Event::ALL.len()],
}

impl EnergyModel {
    /// Creates an empty model.
    pub fn new() -> EnergyModel {
        EnergyModel::default()
    }

    /// Records `n` occurrences of `event`.
    #[inline]
    pub fn record(&mut self, event: Event, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Occurrences recorded for `event`.
    pub fn count(&self, event: Event) -> u64 {
        self.counts[event.index()]
    }

    /// Total dynamic energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        Event::ALL
            .iter()
            .map(|e| self.counts[e.index()] as f64 * e.nanojoules())
            .sum()
    }

    /// Energy-delay product: total energy × execution cycles (the paper's
    /// Figure 15 metric, meaningful in ratios).
    pub fn edp(&self, cycles: u64) -> f64 {
        self.total_nj() * cycles as f64
    }

    /// Merges another model's counts into this one.
    pub fn merge(&mut self, other: &EnergyModel) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// A per-event breakdown sorted by descending energy share (empty
    /// categories omitted).
    pub fn breakdown(&self) -> Vec<(Event, u64, f64)> {
        let mut rows: Vec<(Event, u64, f64)> = Event::ALL
            .iter()
            .map(|&e| (e, self.count(e), self.count(e) as f64 * e.nanojoules()))
            .filter(|&(_, n, _)| n > 0)
            .collect();
        rows.sort_by(|a, b| b.2.total_cmp(&a.2));
        rows
    }
}

impl fmt::Debug for EnergyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnergyModel")
            .field("total_nj", &self.total_nj())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_is_zero() {
        assert_eq!(EnergyModel::new().total_nj(), 0.0);
    }

    #[test]
    fn record_and_count() {
        let mut e = EnergyModel::new();
        e.record(Event::AluOp, 3);
        e.record(Event::AluOp, 2);
        assert_eq!(e.count(Event::AluOp), 5);
        assert!((e.total_nj() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edp_scales_with_cycles() {
        let mut e = EnergyModel::new();
        e.record(Event::Fetch, 10);
        assert_eq!(e.edp(200), e.total_nj() * 200.0);
    }

    #[test]
    fn cam_search_costs_more_than_ram_read() {
        assert!(Event::SqSearch.nanojoules() > Event::TssbfRead.nanojoules());
        assert!(Event::DramAccess.nanojoules() > Event::L2Access.nanojoules());
        assert!(Event::L2Access.nanojoules() > Event::CacheRead.nanojoules());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = EnergyModel::new();
        a.record(Event::Rob, 1);
        let mut b = EnergyModel::new();
        b.record(Event::Rob, 2);
        b.record(Event::Fetch, 1);
        a.merge(&b);
        assert_eq!(a.count(Event::Rob), 3);
        assert_eq!(a.count(Event::Fetch), 1);
    }

    #[test]
    fn breakdown_sorted_and_filtered() {
        let mut e = EnergyModel::new();
        e.record(Event::DramAccess, 1);
        e.record(Event::Fetch, 10);
        let rows = e.breakdown();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, Event::DramAccess);
    }

    #[test]
    fn all_events_have_distinct_labels() {
        let mut labels: Vec<&str> = Event::ALL.iter().map(|e| e.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Event::ALL.len());
    }
}
