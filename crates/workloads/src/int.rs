//! SPECint 2006 analogues (paper §V). Each kernel reproduces the
//! memory-dependence character the paper attributes to (or that is well
//! known of) its namesake; DESIGN.md documents the substitution.

use dmdp_isa::asm;

use crate::gen::{halves_with_repeats, permutation_ring, words_mod, words_with_repeats};
use crate::{Suite, Workload};

fn build(name: &'static str, character: &'static str, src: &str) -> Workload {
    let program = asm::assemble_named(name, src)
        .unwrap_or_else(|e| panic!("kernel {name} failed to assemble: {e}"));
    Workload { name, suite: Suite::Int, character, program }
}

/// perl: interpreter dispatch — heavy branching, always-colliding global
/// variable updates, and a small hash table with occasional collisions.
pub(crate) fn perl(n: u32) -> Workload {
    let iters = n * 6;
    let ops = words_with_repeats(0x9e37_0001, 256, 4, 4);
    build(
        "perl",
        "branchy dispatch; AC globals; small-OC hash updates",
        &format!(
            r#"
            .data
    ops:    .word {ops}
    g1:     .word 0
    g2:     .word 0
    hash:   .space 256
            .text
            lui  $8, %hi(ops)
            ori  $8, $8, %lo(ops)
            lui  $9, %hi(hash)
            ori  $9, $9, %lo(hash)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 255
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # op = ops[i % 256]
            beq  $7, $0, case0
            addi $10, $7, -1
            beq  $10, $0, case1
            addi $10, $7, -2
            beq  $10, $0, case2
            # case3: hash update (occasionally colliding)
            mul  $10, $4, $7
            andi $10, $10, 63
            sll  $10, $10, 2
            add  $10, $10, $9
            lw   $11, 0($10)
            addi $11, $11, 1
            sw   $11, 0($10)
            j    next
    case0:  # global accumulate (always colliding)
            lw   $11, g1($0)
            add  $11, $11, $4
            sw   $11, g1($0)
            j    next
    case1:  # second global
            lw   $11, g2($0)
            xor  $11, $11, $4
            sw   $11, g2($0)
            j    next
    case2:  # pure compute path (varies store distances for other cases)
            mul  $11, $4, $4
            add  $12, $12, $11
    next:
            addi $4, $4, 1
            bne  $4, $5, loop
            lw   $1, g1($0)
            lw   $2, g2($0)
            add  $1, $1, $2
            sw   $1, g1($0)
            halt
        "#
        ),
    )
}

/// bzip2: the paper's Figure 13 loop — `LHU` reads a half-word pointer
/// array with repeated values, and the pointed-to counter is incremented.
/// The collision distance keeps drifting, defeating the distance
/// predictor exactly as §VI-d describes.
pub(crate) fn bzip2(n: u32) -> Workload {
    let iters = n * 8;
    let halves = halves_with_repeats(0x1234_5678, 512, 80, 3);
    build(
        "bzip2",
        "Fig.13: LHU pointer array, OC histogram increments with drifting distance",
        &format!(
            r#"
            .data
    idx:    .half {halves}
    hist:   .space 256
            .text
            lui  $8, %hi(idx)
            ori  $8, $8, %lo(idx)
            lui  $9, %hi(hist)
            ori  $9, $9, %lo(hist)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 511
            sll  $6, $6, 1
            add  $6, $6, $8
            lhu  $7, 0($6)          # ptr = idx[i % 512]  (partial-word load)
            sll  $7, $7, 2
            add  $7, $7, $9
            # "a series of computation" between load and increment
            muli $10, $4, 3
            andi $10, $10, 7
            xor  $13, $10, $4
            sll  $14, $13, 1
            add  $14, $14, $10
            andi $14, $14, 1023
            lhu  $16, 0($6)         # re-read of the index stream (NC)
            add  $12, $12, $16
            lw   $11, 0($7)         # x[ptr]
            addi $11, $11, 1
            sw   $11, 0($7)         # x[ptr]++  (OC, drifting distance)
            # data-dependent hammock on the histogram value
            andi $17, $11, 1
            beq  $17, $0, even
            add  $12, $12, $10
            j    join
    even:
            sub  $12, $12, $10
    join:
            add  $12, $12, $14
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, hist($0)
            halt
        "#
        ),
    )
}

/// gcc: symbol-table-like pointer graph — short pointer chains, field
/// reads/writes, and register spilling to a hot stack frame.
pub(crate) fn gcc(n: u32) -> Workload {
    let iters = n * 6;
    let ring = permutation_ring(0x6cc0_0001, 256, 16);
    build(
        "gcc",
        "pointer-graph field updates; AC spill slots; moderate OC",
        &format!(
            r#"
            .data
    nodes:  .word {ring}
    frame:  .space 64
            .text
            lui  $8, %hi(nodes)
            ori  $8, $8, %lo(nodes)
            lui  $29, %hi(frame)
            ori  $29, $29, %lo(frame)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
            li   $7, 0              # cursor offset into nodes
    loop:
            sw   $4, 0($29)         # spill i (AC)
            add  $6, $8, $7
            lw   $7, 0($6)          # next = node->next (chase)
            lw   $10, 4($6)         # field read
            addi $10, $10, 1
            sw   $10, 4($6)         # field write (OC across revisits)
            muli $13, $4, 13        # symbol-table slot: same slot recurs
            andi $13, $13, 7        # within the window at drifting distance
            sll  $13, $13, 2
            add  $13, $13, $29
            lw   $14, 8($13)        # symtab load: inconsistent dependence
            xor  $14, $14, $4
            sw   $14, 8($13)
            lw   $11, 0($29)        # reload i (AC, cloakable)
            add  $12, $12, $11
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, 0($29)
            halt
        "#
        ),
    )
}

/// mcf: cache-miss-dominated pointer chasing over a large ring; the
/// colliding stores depend on miss loads, so cloaking helps little
/// (paper §II's mcf discussion).
pub(crate) fn mcf(n: u32) -> Workload {
    let iters = n * 4;
    let ring = permutation_ring(0x0c0f_0001, 4096, 16);
    build(
        "mcf",
        "large-footprint pointer chase; miss-dependent OC stores",
        &format!(
            r#"
            .data
    nodes:  .word {ring}
    bkt:    .space 32
            .text
            lui  $8, %hi(nodes)
            ori  $8, $8, %lo(nodes)
            lui  $9, %hi(bkt)
            ori  $9, $9, %lo(bkt)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
            li   $7, 0
    loop:
            add  $6, $8, $7
            lw   $7, 0($6)          # chase (likely L2/DRAM miss)
            lw   $10, 4($6)         # node cost
            addi $10, $10, 1
            sw   $10, 4($6)         # update cost (depends on miss load)
            lw   $11, 4($6)         # immediate reload (AC)
            andi $15, $11, 1
            beq  $15, $0, nobkt     # half the arcs update a cost bucket
            andi $13, $11, 12       # bucket recurs at drifting in-window
            add  $13, $13, $9       # distances (path-dependent gap)
            lw   $14, 0($13)
            addi $14, $14, 1
            sw   $14, 0($13)
    nobkt:
            add  $12, $12, $11
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, nodes($0)
            halt
        "#
        ),
    )
}

/// gobmk: data-dependent branching over a board; the number of stores
/// between a store and its reload depends on the path — the
/// path-sensitive distance predictor's case.
pub(crate) fn gobmk(n: u32) -> Workload {
    let iters = n * 6;
    let board = words_mod(0x60b0_0001, 512, 3);
    build(
        "gobmk",
        "path-dependent store distances; branchy evaluation",
        &format!(
            r#"
            .data
    board:  .word {board}
    tmp:    .space 16
            .text
            lui  $8, %hi(board)
            ori  $8, $8, %lo(board)
            lui  $9, %hi(tmp)
            ori  $9, $9, %lo(tmp)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 511
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # stone = board[i%512]
            sw   $4, 0($9)          # liberty scratch
            beq  $7, $0, empty
            addi $10, $7, -1
            beq  $10, $0, black
            # white: two extra stores before the reload
            sw   $7, 4($9)
            sw   $4, 8($9)
            j    merge
    black:  # one extra store
            sw   $7, 4($9)
            j    merge
    empty:  # no extra stores
    merge:
            lw   $11, 0($9)         # distance to this store depends on path
            add  $12, $12, $11
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, 0($9)
            halt
        "#
        ),
    )
}

/// hmmer: dynamic-programming row updates with many *silent stores*
/// (writes of unchanged scores) — the benchmark where the
/// silent-store-aware update policy matters most (§VI-a).
pub(crate) fn hmmer(n: u32) -> Workload {
    let iters = n * 5;
    let scores = words_mod(0x4a33_0001, 128, 4);
    build(
        "hmmer",
        "DP rows: stable j-1 cloaks; prior-row reads delayed; silent max() stores",
        &format!(
            r#"
            .data
    row:    .space 256
    sc:     .word {scores}
            .text
            lui  $8, %hi(row)
            ori  $8, $8, %lo(row)
            lui  $9, %hi(sc)
            ori  $9, $9, %lo(sc)
            li   $4, 1
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 31
            bne  $6, $0, mid
            addi $6, $6, 16         # keep j-1 in range
    mid:
            sll  $6, $6, 2
            add  $10, $6, $8
            lw   $11, -4($10)       # row[j-1]: distance 1, cloakable
            lw   $18, 0($10)        # row[j] from the previous sweep: the
                                    # in-window distance drifts with the
                                    # conditional store below -> delayed
            add  $13, $6, $9
            lw   $14, 0($13)        # score (NC)
            add  $14, $14, $11
            slt  $15, $18, $14
            beq  $15, $0, keep
            or   $18, $14, $0       # max()
            sw   $18, 128($8)       # new-best bookkeeping store: makes
                                    # the sweep's store count vary
    keep:
            sw   $18, 0($10)        # usually silent (value converges)
            add  $12, $12, $18
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, row($0)
            halt
        "#
        ),
    )
}

/// sjeng: recursive tree search — call/return with stack push/pop traffic
/// whose collision distances vary with depth.
pub(crate) fn sjeng(n: u32) -> Workload {
    let iters = n * 2;
    let moves = words_mod(0x57e4_0001, 256, 256);
    build(
        "sjeng",
        "recursive search; depth-varying stack AC traffic",
        &format!(
            r#"
            .data
    moves:  .word {moves}
    stk:    .space 1024
            .text
            lui  $8, %hi(moves)
            ori  $8, $8, %lo(moves)
            lui  $29, %hi(stk)
            ori  $29, $29, %lo(stk)
            addi $29, $29, 1000
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            # board evaluation between searches (NC gather + compute)
            andi $6, $4, 255
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $13, 0($6)
            muli $13, $13, 5
            sra  $13, $13, 3
            add  $12, $12, $13
            andi $2, $4, 255        # node index
            li   $3, 2              # depth
            jal  search
            add  $12, $12, $2
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, stk($0)
            halt
    search: # $2 = node, $3 = depth -> $2 = score
            blez $3, leaf
            addi $29, $29, -12
            sw   $31, 0($29)        # push ra
            sw   $2, 4($29)         # push node
            sw   $3, 8($29)         # push depth
            # board evaluation: non-colliding gather work
            sll  $6, $2, 2
            add  $6, $6, $8
            lw   $7, 0($6)
            addi $10, $2, 1
            andi $10, $10, 255
            sll  $10, $10, 2
            add  $10, $10, $8
            lw   $11, 0($10)
            add  $7, $7, $11
            muli $7, $7, 3
            sra  $7, $7, 4
            lw   $2, 0($6)          # child = moves[node]
            andi $2, $2, 255
            addi $3, $3, -1
            jal  search
            # depth-parity branch: gives each recursion level a distinct
            # branch-history signature, which the path-sensitive distance
            # predictor needs to separate the per-depth pop distances
            andi $10, $3, 1
            beq  $10, $0, evn
            addi $2, $2, 1
    evn:
            lw   $31, 0($29)        # pop (collides with pushes, depth-dependent)
            lw   $6, 4($29)
            lw   $3, 8($29)
            addi $29, $29, 12
            add  $2, $2, $6
            jr   $31
    leaf:
            andi $2, $2, 15
            jr   $31
        "#
        ),
    )
}

/// libquantum ("lib"): pure streaming over a gate array — loads almost
/// never collide in-flight (NC): the rewrite of an element is reread only
/// 2048 stores later, far outside the window.
pub(crate) fn lib(n: u32) -> Workload {
    let iters = n * 8;
    build(
        "lib",
        "streaming NC sweep; near-zero low-confidence loads",
        &format!(
            r#"
            .data
    amp:    .space 8192
            .text
            lui  $8, %hi(amp)
            ori  $8, $8, %lo(amp)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 2047
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # amp[i]
            xor  $7, $7, $4         # apply "gate"
            sw   $7, 0($6)          # write back, reread 2048 stores later
            addi $4, $4, 1
            bne  $4, $5, loop
            lw   $1, 0($8)
            sw   $1, 4($8)
            halt
        "#
        ),
    )
}

/// h264ref: motion-compensation-style byte/half copies — partial-word
/// stores forwarded to byte, half and word loads (paper §IV-D's case).
pub(crate) fn h264ref(n: u32) -> Workload {
    let iters = n * 5;
    let pix = words_mod(0x2640_0001, 256, 256);
    build(
        "h264ref",
        "byte/half store-load traffic; partial-word forwarding",
        &format!(
            r#"
            .data
    refp:   .word {pix}
    cur:    .space 1024
            .text
            lui  $8, %hi(refp)
            ori  $8, $8, %lo(refp)
            lui  $9, %hi(cur)
            ori  $9, $9, %lo(cur)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 255
            sll  $7, $6, 2
            add  $10, $7, $8
            lw   $11, 0($10)        # reference pixel word (NC)
            add  $13, $7, $9
            srl  $20, $4, 6
            andi $20, $20, 3        # byte lane changes every 64 iters:
            add  $21, $13, $20      # NoSQ's predicted shift is right in
            sb   $11, 0($21)        # the run, wrong at run boundaries;
            lbu  $15, 0($21)        # DMDP's CMP computes it exactly
            srl  $14, $11, 8
            srl  $22, $4, 7
            andi $22, $22, 1
            sll  $22, $22, 1
            add  $23, $13, $22      # half lane alternates 0/2 per 128 iters
            sh   $14, 0($23)
            lhu  $17, 0($23)        # half reload at the moving lane
            lb   $16, 0($21)        # signed byte reload
            add  $12, $12, $15
            add  $12, $12, $16
            add  $12, $12, $17
            # read a block written ~64 iterations ago: out of the window
            addi $18, $6, -64
            andi $18, $18, 255
            sll  $18, $18, 2
            add  $18, $18, $9
            lw   $19, 0($18)
            add  $12, $12, $19
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, cur($0)
            halt
        "#
        ),
    )
}

/// astar: open-set grid search — random-access visited map with
/// conditional, poorly-predictable updates (OC).
pub(crate) fn astar(n: u32) -> Workload {
    let iters = n * 5;
    let steps = words_with_repeats(0xa57a_0001, 512, 512, 3);
    build(
        "astar",
        "clustered cell revisits at drifting distances; path-dependent updates",
        &format!(
            r#"
            .data
    steps:  .word {steps}
    vmap:   .space 2048
            .text
            lui  $8, %hi(steps)
            ori  $8, $8, %lo(steps)
            lui  $9, %hi(vmap)
            ori  $9, $9, %lo(vmap)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 511
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # cell = steps[i%512]; repeats cluster
            sll  $7, $7, 2
            add  $7, $7, $9
            lw   $10, 0($7)         # visited cost (OC, drifting distance)
            andi $11, $10, 1
            beq  $11, $0, even
            addi $10, $10, 3        # odd path
            j    upd
    even:
            addi $10, $10, 1        # even path
    upd:
            andi $10, $10, 255
            sw   $10, 0($7)         # update cell
            add  $12, $12, $10
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, vmap($0)
            halt
        "#
        ),
    )
}
