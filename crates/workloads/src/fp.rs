//! SPECfp 2006 analogues (paper §V). The ISA has no floating-point unit;
//! long-latency integer `mul`/`div` chains stand in for FP arithmetic —
//! the memory-dependence behaviour, which is what DMDP responds to, is
//! preserved (see DESIGN.md's substitution table).

use dmdp_isa::asm;

use crate::gen::{permutation_ring, words_mod};
use crate::{Suite, Workload};

fn build(name: &'static str, character: &'static str, src: &str) -> Workload {
    let program = asm::assemble_named(name, src)
        .unwrap_or_else(|e| panic!("kernel {name} failed to assemble: {e}"));
    Workload { name, suite: Suite::Fp, character, program }
}

/// bwaves: 1-D stencil sweep — the `[i-1]` load collides with the
/// previous iteration's store at a perfectly stable distance (cloakable).
pub(crate) fn bwaves(n: u32) -> Workload {
    let iters = n * 5;
    let grid = words_mod(0xb3a7_0001, 1024, 1000);
    build(
        "bwaves",
        "stencil with stable-distance AC collisions",
        &format!(
            r#"
            .data
    grid:   .word {grid}
            .text
            lui  $8, %hi(grid)
            ori  $8, $8, %lo(grid)
            li   $4, 1
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 1023
            bne  $6, $0, mid
            addi $6, $6, 512        # skip index 0 so u[i-1] stays in range
    mid:
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, -4($6)         # u[i-1]: collides with last iteration
            lw   $10, 0($6)         # u[i]
            lw   $11, 4($6)         # u[i+1]
            add  $13, $7, $11
            mul  $13, $13, $10      # "FP" work
            sra  $13, $13, 4
            sw   $13, 0($6)         # u[i] =
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $13, grid($0)
            halt
        "#
        ),
    )
}

/// milc: strided gather over a large lattice — misses dominate, and the
/// few predicted dependences are usually wrong (the paper's 23.5 %
/// naive-misprediction example).
pub(crate) fn milc(n: u32) -> Workload {
    let iters = n * 4;
    let lat = words_mod(0x317c_0001, 4096, 97);
    build(
        "milc",
        "strided large-lattice gather; unreliable dependence predictions",
        &format!(
            r#"
            .data
    lat:    .word {lat}
    out:    .space 64
            .text
            lui  $8, %hi(lat)
            ori  $8, $8, %lo(lat)
            lui  $9, %hi(out)
            ori  $9, $9, %lo(out)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            muli $6, $4, 257        # stride through the lattice
            andi $6, $6, 4095
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # su3 element (often a miss)
            mul  $7, $7, $7
            andi $10, $4, 15
            sll  $10, $10, 2
            add  $10, $10, $9
            lw   $11, 0($10)        # out[i%16] (OC at varying distance)
            add  $11, $11, $7
            sw   $11, 0($10)
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $11, out($0)
            halt
        "#
        ),
    )
}

/// zeusmp: plane-by-plane 2-D sweep; a row's stores are reread one full
/// row later — a long, fairly stable distance.
pub(crate) fn zeusmp(n: u32) -> Workload {
    let iters = n * 4;
    let grid = words_mod(0x2e05_0001, 1024, 500);
    build(
        "zeusmp",
        "row-sweep; stable column recurrence; occasional scattered OC updates",
        &format!(
            r#"
            .data
    grid:   .word {grid}
    cols:   .space 128
            .text
            lui  $8, %hi(grid)
            ori  $8, $8, %lo(grid)
            lui  $9, %hi(cols)
            ori  $9, $9, %lo(cols)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 1023
            sll  $6, $6, 2
            add  $6, $6, $8
            andi $10, $4, 31        # column recurrence: written 32 stores ago
            sll  $10, $10, 2
            add  $10, $10, $9
            lw   $7, 0($10)
            muli $7, $7, 3
            sra  $7, $7, 1
            sw   $7, 0($10)
            lw   $11, 0($6)         # streaming read of the grid
            add  $12, $12, $11
            andi $13, $4, 7
            bne  $13, $0, skip
            muli $14, $4, 7
            andi $14, $14, 1023
            sll  $14, $14, 2
            add  $14, $14, $8
            sw   $12, 0($14)        # scattered update: occasional OC with
    skip:                           # the streaming read at varying distance
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, cols($0)
            halt
        "#
        ),
    )
}

/// gromacs: pairwise forces — indexed gather of positions and scatter-add
/// of forces through a repeating neighbour list (OC scatter).
pub(crate) fn gromacs(n: u32) -> Workload {
    let iters = n * 4;
    let nbr = words_mod(0x6206_0001, 512, 128);
    let pos = words_mod(0x6207_0001, 128, 2048);
    build(
        "gromacs",
        "neighbour-list gather + OC force scatter-add",
        &format!(
            r#"
            .data
    nbr:    .word {nbr}
    pos:    .word {pos}
    force:  .space 512
            .text
            lui  $8, %hi(nbr)
            ori  $8, $8, %lo(nbr)
            lui  $9, %hi(pos)
            ori  $9, $9, %lo(pos)
            lui  $13, %hi(force)
            ori  $13, $13, %lo(force)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 511
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # j = nbr[i]
            sll  $10, $7, 2
            add  $11, $10, $9
            lw   $11, 0($11)        # pos[j]
            mul  $11, $11, $11      # "LJ" force
            sra  $11, $11, 6
            add  $10, $10, $13
            lw   $14, 0($10)        # force[j] (OC: repeats in the list)
            add  $14, $14, $11
            sw   $14, 0($10)        # scatter-add
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $14, force($0)
            halt
        "#
        ),
    )
}

/// leslie3d: two-array ping-pong stencil — reads from one array, writes
/// the other, swapping roles; collisions only across phases.
pub(crate) fn leslie3d(n: u32) -> Workload {
    let iters = n * 4;
    let a = words_mod(0x1e51_0001, 512, 300);
    build(
        "leslie3d",
        "ping-pong stencil; phase-boundary collisions",
        &format!(
            r#"
            .data
    a:      .word {a}
    b:      .space 2048
            .text
            lui  $8, %hi(a)
            ori  $8, $8, %lo(a)
            lui  $9, %hi(b)
            ori  $9, $9, %lo(b)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 510
            sll  $6, $6, 2
            add  $10, $6, $8
            add  $11, $6, $9
            andi $13, $4, 512       # phase bit
            beq  $13, $0, fwd
            # reverse phase: read b, write a
            lw   $7, 0($11)
            lw   $14, 4($11)
            add  $7, $7, $14
            muli $7, $7, 5
            sra  $7, $7, 3
            sw   $7, 0($10)
            j    cont
    fwd:    # forward phase: read a, write b
            lw   $7, 0($10)
            lw   $14, 4($10)
            add  $7, $7, $14
            muli $7, $7, 5
            sra  $7, $7, 3
            sw   $7, 0($11)
    cont:
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $7, b($0)
            halt
        "#
        ),
    )
}

/// namd: per-atom accumulation into registers, rare memory collisions;
/// mostly NC loads feeding long multiply chains.
pub(crate) fn namd(n: u32) -> Workload {
    let iters = n * 4;
    let atoms = words_mod(0xa3d0_0001, 1024, 4096);
    build(
        "namd",
        "NC gather + compute; few collisions",
        &format!(
            r#"
            .data
    atoms:  .word {atoms}
    acc:    .space 16
            .text
            lui  $8, %hi(atoms)
            ori  $8, $8, %lo(atoms)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 1023
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)
            mul  $10, $7, $7
            muli $10, $10, 3
            sra  $10, $10, 8
            add  $12, $12, $10
            andi $11, $4, 15
            bne  $11, $0, skip
            sw   $12, acc($0)       # periodic energy checkpoint
    skip:
            lw   $14, acc($0)       # read every iteration: predicted
            add  $12, $12, $14      # dependent, usually independent
            sra  $12, $12, 1
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, acc($0)
            halt
        "#
        ),
    )
}

/// GemsFDTD: field update with random-ish scatter writes reread much
/// later — long, unstable collision distances.
pub(crate) fn gems(n: u32) -> Workload {
    let iters = n * 4;
    let perm = permutation_ring(0x6e35_0001, 1024, 4);
    build(
        "Gems",
        "scatter writes reread at long unstable distances",
        &format!(
            r#"
            .data
    perm:   .word {perm}
    field:  .space 4096
            .text
            lui  $8, %hi(perm)
            ori  $8, $8, %lo(perm)
            lui  $9, %hi(field)
            ori  $9, $9, %lo(field)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
            li   $7, 0
    loop:
            add  $6, $8, $7
            lw   $7, 0($6)          # next scatter target (permutation)
            add  $10, $7, $9
            lw   $11, 0($10)        # field[p]
            muli $11, $11, 7
            sra  $11, $11, 2
            addi $11, $11, 1
            sw   $11, 0($10)        # update field[p]
            add  $12, $12, $11
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, field($0)
            halt
        "#
        ),
    )
}

/// tonto: blocked inner products — streams two operand arrays, writes a
/// small C block at stable distances (cloakable).
pub(crate) fn tonto(n: u32) -> Workload {
    let iters = n * 4;
    let a = words_mod(0x7037_0001, 512, 100);
    let b = words_mod(0x7038_0001, 512, 100);
    build(
        "tonto",
        "blocked inner products; stable-distance C updates",
        &format!(
            r#"
            .data
    a:      .word {a}
    b:      .word {b}
    c:      .space 64
            .text
            lui  $8, %hi(a)
            ori  $8, $8, %lo(a)
            lui  $9, %hi(b)
            ori  $9, $9, %lo(b)
            lui  $13, %hi(c)
            ori  $13, $13, %lo(c)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 511
            sll  $6, $6, 2
            add  $10, $6, $8
            lw   $7, 0($10)         # a[k] (NC)
            add  $10, $6, $9
            lw   $11, 0($10)        # b[k] (NC)
            mul  $7, $7, $11
            andi $10, $4, 15
            sll  $10, $10, 2
            add  $10, $10, $13
            lw   $14, 0($10)        # c[i%16]: collides 16 stores back
            add  $14, $14, $7
            sw   $14, 0($10)
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $14, c($0)
            halt
        "#
        ),
    )
}

/// lbm: store-dominated streaming over a large lattice — maximal store
/// buffer pressure (the paper's biggest store-buffer-size winner and
/// re-execution staller).
pub(crate) fn lbm(n: u32) -> Workload {
    let iters = n * 4;
    build(
        "lbm",
        "store-heavy streaming; store-buffer pressure; reexec stalls",
        &format!(
            r#"
            .data
    cells:  .space 16384
            .text
            lui  $8, %hi(cells)
            ori  $8, $8, %lo(cells)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 1023
            sll  $6, $6, 4          # 16-byte cells over 16 KiB
            add  $6, $6, $8
            lw   $7, 0($6)          # cell density
            addi $7, $7, 1
            sw   $7, 0($6)          # five distribution stores per site
            sw   $7, 4($6)
            sw   $7, 8($6)
            sw   $7, 12($6)
            lw   $10, 4($6)         # immediate reread of a fresh store
            add  $12, $12, $10
            sw   $12, 0($8)
            addi $4, $4, 1
            bne  $4, $5, loop
            halt
        "#
        ),
    )
}

/// wrf: physics mix — an OC conditional update whose predicted store
/// almost never matches (IndepStore-dominant), the case where NoSQ's
/// delaying is most wasteful and DMDP gains its 34 % (paper §VI-c).
pub(crate) fn wrf(n: u32) -> Workload {
    let iters = n * 5;
    let flags = words_mod(0x3f20_0001, 512, 16);
    let grid = words_mod(0x3f21_0001, 512, 700);
    build(
        "wrf",
        "IndepStore-dominant OC: rare collisions, frequent low-confidence loads",
        &format!(
            r#"
            .data
    flags:  .word {flags}
    grid:   .word {grid}
    wet:    .space 64
            .text
            lui  $8, %hi(flags)
            ori  $8, $8, %lo(flags)
            lui  $9, %hi(grid)
            ori  $9, $9, %lo(grid)
            lui  $13, %hi(wet)
            ori  $13, $13, %lo(wet)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            andi $6, $4, 511
            sll  $6, $6, 2
            add  $10, $6, $8
            lw   $7, 0($10)         # condensation flag (0..15)
            andi $11, $4, 15
            sll  $11, $11, 2
            add  $11, $11, $13
            bne  $7, $0, dry        # 1/16 of iterations store...
            sw   $4, 0($11)         # ...to wet[i%16]
    dry:
            lw   $14, 0($11)        # usually independent, sometimes not:
                                    # the predicted store is in flight but
                                    # almost never matches (IndepStore)
            add  $10, $6, $9
            lw   $15, 0($10)
            muli $15, $15, 3
            sra  $15, $15, 2
            add  $16, $14, $15
            sw   $16, 4($10)        # streaming physics write-back keeps
            add  $12, $12, $16      # the in-flight store window populated
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, wet($0)
            halt
        "#
        ),
    )
}

/// sphinx3: acoustic scoring — gathers feature vectors, accumulates
/// scores, stores rarely; load-dominated with moderate misses.
pub(crate) fn sphinx3(n: u32) -> Workload {
    let iters = n * 4;
    let feat = words_mod(0x5f19_0001, 2048, 255);
    build(
        "sphinx3",
        "load-dominated gather scoring; sparse stores",
        &format!(
            r#"
            .data
    feat:   .word {feat}
    best:   .space 32
            .text
            lui  $8, %hi(feat)
            ori  $8, $8, %lo(feat)
            li   $4, 0
            lui  $5, %hi({iters})
            ori  $5, $5, %lo({iters})
    loop:
            muli $6, $4, 131
            andi $6, $6, 2047
            sll  $6, $6, 2
            add  $6, $6, $8
            lw   $7, 0($6)          # feature
            lw   $10, 4($6)
            sub  $11, $7, $10
            mul  $11, $11, $11      # squared distance
            add  $12, $12, $11
            andi $13, $4, 15
            bne  $13, $0, skip
            sw   $12, best($0)      # occasional best-score update
    skip:
            lw   $14, best($0)      # read every iteration: predicted
            add  $12, $12, $14      # dependent, usually independent
            sra  $12, $12, 1
            addi $4, $4, 1
            bne  $4, $5, loop
            sw   $12, best($0)
            halt
        "#
        ),
    )
}
