//! Deterministic data generation for the kernels.
use dmdp_prng::Prng;

/// A seeded RNG shared by all kernels; same seed -> same program.
pub(crate) fn rng(seed: u64) -> Prng {
    Prng::new(seed)
}

/// `n` random words in `0..bound`, rendered as a `.word` directive body.
pub(crate) fn words_mod(seed: u64, n: usize, bound: u32) -> String {
    let mut r = rng(seed);
    (0..n).map(|_| r.below(bound).to_string()).collect::<Vec<_>>().join(", ")
}

/// A random permutation of `0..n` scaled by `stride`, as `.word` body —
/// the classic pointer-chasing ring.
pub(crate) fn permutation_ring(seed: u64, n: usize, stride: u32) -> String {
    let mut r = rng(seed);
    let mut idx: Vec<u32> = (0..n as u32).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = r.index(i + 1);
        idx.swap(i, j);
    }
    // next[idx[i]] = idx[(i+1) % n] builds one big cycle.
    let mut next = vec![0u32; n];
    for i in 0..n {
        next[idx[i] as usize] = idx[(i + 1) % n] * stride;
    }
    next.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
}

/// `n` half-word indices in `0..bound` where values recur in short
/// irregular runs — the paper's Figure 13 pattern: repeated pointers make
/// the increment collide with itself at a *drifting* store distance.
pub(crate) fn halves_with_repeats(seed: u64, n: usize, bound: u32, max_run: u32) -> String {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    let mut current = r.below(bound);
    let mut run = 0u32;
    for _ in 0..n {
        if run == 0 {
            current = r.below(bound);
            run = 1 + r.below(max_run);
        }
        out.push(current.to_string());
        run -= 1;
        // Occasionally interleave a different index inside a run so the
        // collision distance varies.
        if r.chance(1, 4) && run > 0 {
            out.push(r.below(bound).to_string());
            run = run.saturating_sub(1);
        }
    }
    out.truncate(n);
    out.join(", ")
}

/// `n` word indices in `0..bound` where values recur in short irregular
/// runs (word-sized variant of [`halves_with_repeats`]).
pub(crate) fn words_with_repeats(seed: u64, n: usize, bound: u32, max_run: u32) -> String {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    let mut current = r.below(bound);
    let mut run = 0u32;
    for _ in 0..n {
        if run == 0 {
            current = r.below(bound);
            run = 1 + r.below(max_run);
        }
        out.push(current.to_string());
        run -= 1;
        if r.chance(1, 3) && run > 0 {
            out.push(r.below(bound).to_string());
            run = run.saturating_sub(1);
        }
    }
    out.truncate(n);
    out.join(", ")
}
