#![warn(missing_docs)]
//! # dmdp-workloads
//!
//! Synthetic analogues of the 21 SPEC CPU2006 benchmarks the paper
//! simulates (§V), one kernel per benchmark, each engineered to
//! reproduce that benchmark's *memory-dependence character* — the only
//! property the DMDP mechanisms are sensitive to:
//!
//! * the mix of never/always/occasionally colliding loads (paper §II),
//! * store→load collision distance stability (drives confidence),
//! * silent stores (paper §IV-C a),
//! * partial-word store/load overlap (paper §IV-D),
//! * cache-miss behaviour and store-buffer pressure (§VI-e),
//! * branch-path-dependent collision distances (the path-sensitive
//!   predictor's reason to exist).
//!
//! Every kernel is deterministic: data is generated from a fixed seed and
//! the kernel ends with a checksum loop plus `halt`, so the functional
//! emulator can validate every simulator model against it.
//!
//! # Example
//!
//! ```
//! use dmdp_workloads::{all, by_name, Scale};
//! assert_eq!(all(Scale::Test).len(), 21);
//! let w = by_name("bzip2", Scale::Test).expect("bzip2 analogue exists");
//! assert_eq!(w.suite, dmdp_workloads::Suite::Int);
//! assert!(w.program.len() > 10);
//! ```

mod fp;
mod gen;
mod int;

use dmdp_isa::Program;

/// The benchmark suite a workload belongs to (the paper reports separate
/// Int and FP geomeans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPECint 2006 analogues.
    Int,
    /// SPECfp 2006 analogues (long-latency arithmetic stands in for FP).
    Fp,
}

/// How big to build the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few thousand dynamic instructions — fast unit tests.
    Test,
    /// Tens of thousands — integration tests and quick experiments.
    Small,
    /// Hundreds of thousands — the benchmark harness default.
    Full,
    /// Tens of millions — 10× `Full`; full detailed simulation at this
    /// scale is painfully slow by design, it exists to exercise the
    /// sampled-simulation pipeline (checkpoint fast-forward).
    Huge,
}

impl Scale {
    /// The iteration multiplier kernels derive their trip counts from.
    pub fn iterations(self) -> u32 {
        match self {
            Scale::Test => 64,
            Scale::Small => 512,
            Scale::Full => 4096,
            Scale::Huge => 40960,
        }
    }

    /// Stable lower-case name (CLI values and JSON artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Full => "full",
            Scale::Huge => "huge",
        }
    }

    /// Inverse of [`Scale::name`].
    pub fn from_name(name: &str) -> Option<Scale> {
        match name {
            "test" => Some(Scale::Test),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            "huge" => Some(Scale::Huge),
            _ => None,
        }
    }
}

impl Suite {
    /// Stable lower-case name (JSON artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Suite::Int => "int",
            Suite::Fp => "fp",
        }
    }

    /// Inverse of [`Suite::name`].
    pub fn from_name(name: &str) -> Option<Suite> {
        match name {
            "int" => Some(Suite::Int),
            "fp" => Some(Suite::Fp),
            _ => None,
        }
    }
}

/// A named, buildable workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The SPEC benchmark this kernel is an analogue of.
    pub name: &'static str,
    /// Which suite the paper reports it under.
    pub suite: Suite,
    /// What memory-dependence behaviour the kernel reproduces.
    pub character: &'static str,
    /// The assembled program.
    pub program: Program,
}

/// All 21 workloads, in the paper's reporting order (Int then FP).
pub fn all(scale: Scale) -> Vec<Workload> {
    let n = scale.iterations();
    vec![
        int::perl(n),
        int::bzip2(n),
        int::gcc(n),
        int::mcf(n),
        int::gobmk(n),
        int::hmmer(n),
        int::sjeng(n),
        int::lib(n),
        int::h264ref(n),
        int::astar(n),
        fp::bwaves(n),
        fp::milc(n),
        fp::zeusmp(n),
        fp::gromacs(n),
        fp::leslie3d(n),
        fp::namd(n),
        fp::gems(n),
        fp::tonto(n),
        fp::lbm(n),
        fp::wrf(n),
        fp::sphinx3(n),
    ]
}

/// Looks up one workload by its SPEC name.
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

/// The kernel names, in the paper's reporting order — for `unknown
/// workload` diagnostics that must list the valid spellings without
/// assembling 21 programs at the requested scale.
pub fn names() -> [&'static str; 21] {
    [
        "perl", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng", "lib", "h264ref", "astar",
        "bwaves", "milc", "zeusmp", "gromacs", "leslie3d", "namd", "Gems", "tonto", "lbm", "wrf",
        "sphinx3",
    ]
}

/// The Int-suite workloads.
pub fn int_suite(scale: Scale) -> Vec<Workload> {
    all(scale).into_iter().filter(|w| w.suite == Suite::Int).collect()
}

/// The FP-suite workloads.
pub fn fp_suite(scale: Scale) -> Vec<Workload> {
    all(scale).into_iter().filter(|w| w.suite == Suite::Fp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmdp_isa::Emulator;

    #[test]
    fn twenty_one_workloads_ten_int_eleven_fp() {
        let ws = all(Scale::Test);
        assert_eq!(ws.len(), 21);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::Int).count(), 10);
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::Fp).count(), 11);
    }

    #[test]
    fn names_matches_the_workload_list() {
        let ws = all(Scale::Test);
        assert_eq!(names().to_vec(), ws.iter().map(|w| w.name).collect::<Vec<_>>());
    }

    #[test]
    fn names_are_unique() {
        let ws = all(Scale::Test);
        let mut names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn every_kernel_halts_functionally() {
        for w in all(Scale::Test) {
            let mut emu = Emulator::new(&w.program);
            let r = emu
                .run(50_000_000)
                .unwrap_or_else(|e| panic!("{} does not halt: {e}", w.name));
            assert!(r.retired > 500, "{} too small: {} instructions", w.name, r.retired);
            assert!(r.loads > 0 && r.stores > 0, "{} must touch memory", w.name);
        }
    }

    #[test]
    fn scales_are_ordered() {
        let small = by_name("mcf", Scale::Test).unwrap();
        let big = by_name("mcf", Scale::Small).unwrap();
        let mut e1 = Emulator::new(&small.program);
        let mut e2 = Emulator::new(&big.program);
        let r1 = e1.run(100_000_000).unwrap();
        let r2 = e2.run(100_000_000).unwrap();
        assert!(r2.retired > r1.retired);
    }

    #[test]
    fn huge_scale_parses_and_is_ten_x_full() {
        assert_eq!(Scale::from_name("huge"), Some(Scale::Huge));
        assert_eq!(Scale::Huge.name(), "huge");
        assert!(Scale::Huge.iterations() >= 10 * Scale::Full.iterations());
        assert!(Scale::Huge.iterations() >= 40960);
    }

    #[test]
    fn deterministic_builds() {
        let a = by_name("gcc", Scale::Test).unwrap();
        let b = by_name("gcc", Scale::Test).unwrap();
        assert_eq!(a.program.text(), b.program.text());
        assert_eq!(a.program.data(), b.program.data());
    }
}
