//! Checkpoint determinism over every kernel: capture → serialize →
//! restore → resume must reproduce the uncheckpointed run
//! bit-identically — same `RunResult`, same final architectural state —
//! for each of the 21 workloads at test scale. (That the *detailed*
//! pipeline seeded from a checkpoint matches its golden stats is pinned
//! separately in `dmdp-core`.)

use dmdp_isa::{Checkpoint, Emulator, StopReason};
use dmdp_workloads::{all, Scale};

#[test]
fn every_kernel_checkpoint_round_trips() {
    for w in all(Scale::Test) {
        let mut full = Emulator::new(&w.program);
        let full_result = full.run(50_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));

        // Capture mid-run at roughly one third of the dynamic stream.
        let at = (full_result.retired / 3).max(1);
        let mut front = Emulator::new(&w.program);
        assert_eq!(
            front.run_insns(at).unwrap_or_else(|e| panic!("{}: {e}", w.name)),
            StopReason::BudgetExhausted,
            "{}: checkpoint boundary fell past the end",
            w.name
        );
        let ckpt = front.checkpoint();
        assert_eq!(ckpt.result.retired, at, "{}", w.name);

        // Serialization round-trip preserves content and digest.
        let restored = Checkpoint::from_bytes(&ckpt.to_bytes())
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(restored, ckpt, "{}", w.name);
        assert_eq!(restored.digest(), ckpt.digest(), "{}", w.name);

        // Resume from the restored checkpoint: bit-identical run.
        let mut resumed = Emulator::from_checkpoint(&w.program, &restored);
        let resumed_result =
            resumed.run(50_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(resumed_result, full_result, "{}: RunResult diverged", w.name);
        assert_eq!(resumed.regs(), full.regs(), "{}: registers diverged", w.name);
        assert_eq!(resumed.pc(), full.pc(), "{}: PC diverged", w.name);

        // Recapturing at the same boundary yields the same digest.
        let mut again = Emulator::new(&w.program);
        again.run_insns(at).unwrap();
        assert_eq!(again.checkpoint().digest(), ckpt.digest(), "{}: digest unstable", w.name);
    }
}
