use crate::Mean;

/// How a load obtained its value — the classification of paper Figure 2,
/// extended with the predicated class DMDP introduces.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum LoadSource {
    /// Read straight from the cache ("Direct access").
    Direct,
    /// Value obtained through memory cloaking ("Bypassing").
    Bypassed,
    /// Execution was delayed until the predicted colliding store committed
    /// ("Delayed access", NoSQ only).
    Delayed,
    /// Value selected by a CMP/CMOV predication pair (DMDP only).
    Predicated,
}

impl LoadSource {
    /// All classes, in the paper's reporting order.
    pub const ALL: [LoadSource; 4] =
        [LoadSource::Direct, LoadSource::Bypassed, LoadSource::Delayed, LoadSource::Predicated];

    /// The paper's label for the class.
    pub fn label(self) -> &'static str {
        match self {
            LoadSource::Direct => "Direct access",
            LoadSource::Bypassed => "Bypassing",
            LoadSource::Delayed => "Delayed access",
            LoadSource::Predicated => "Predicated",
        }
    }

    fn index(self) -> usize {
        match self {
            LoadSource::Direct => 0,
            LoadSource::Bypassed => 1,
            LoadSource::Delayed => 2,
            LoadSource::Predicated => 3,
        }
    }
}

/// Per-class load counts and execution times.
///
/// *Execution time* follows the paper's definition: "the number of cycles
/// spent between renaming of the load and the load result becoming
/// available", clamped at zero for bypassing loads whose store data was
/// ready before the load renamed (§II).
///
/// # Example
///
/// ```
/// use dmdp_stats::{LoadLatencyStats, LoadSource};
/// let mut s = LoadLatencyStats::new();
/// s.record(LoadSource::Direct, 100, 104);
/// s.record(LoadSource::Bypassed, 100, 90); // ready before rename -> 0
/// assert_eq!(s.count(LoadSource::Direct), 1);
/// assert_eq!(s.mean_latency(LoadSource::Bypassed), 0.0);
/// assert_eq!(s.overall_mean(), 2.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadLatencyStats {
    classes: [Mean; 4],
}

impl LoadLatencyStats {
    /// Creates empty statistics.
    pub fn new() -> LoadLatencyStats {
        LoadLatencyStats::default()
    }

    /// Records one load: renamed at `rename_cycle`, result available at
    /// `ready_cycle`. A ready time earlier than rename counts as zero.
    pub fn record(&mut self, source: LoadSource, rename_cycle: u64, ready_cycle: u64) {
        let latency = ready_cycle.saturating_sub(rename_cycle);
        self.classes[source.index()].add(latency);
    }

    /// Number of loads in a class.
    pub fn count(&self, source: LoadSource) -> u64 {
        self.classes[source.index()].count()
    }

    /// Total loads across all classes.
    pub fn total(&self) -> u64 {
        self.classes.iter().map(Mean::count).sum()
    }

    /// Fraction of loads in a class (0.0 when there are no loads).
    pub fn fraction(&self, source: LoadSource) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(source) as f64 / total as f64
        }
    }

    /// Mean execution time of a class.
    pub fn mean_latency(&self, source: LoadSource) -> f64 {
        self.classes[source.index()].mean()
    }

    /// Mean execution time over every load (Table IV's quantity).
    pub fn overall_mean(&self) -> f64 {
        let mut all = Mean::new();
        for c in &self.classes {
            all.merge(*c);
        }
        all.mean()
    }

    /// Merges another tracker into this one.
    pub fn merge(&mut self, other: &LoadLatencyStats) {
        for (a, b) in self.classes.iter_mut().zip(other.classes.iter()) {
            a.merge(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut s = LoadLatencyStats::new();
        s.record(LoadSource::Direct, 0, 4);
        s.record(LoadSource::Bypassed, 0, 0);
        s.record(LoadSource::Delayed, 0, 40);
        s.record(LoadSource::Delayed, 0, 60);
        let total: f64 = LoadSource::ALL.iter().map(|&c| s.fraction(c)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(s.fraction(LoadSource::Delayed), 0.5);
    }

    #[test]
    fn negative_latency_clamps_to_zero() {
        let mut s = LoadLatencyStats::new();
        s.record(LoadSource::Bypassed, 50, 10);
        assert_eq!(s.mean_latency(LoadSource::Bypassed), 0.0);
    }

    #[test]
    fn per_class_and_overall_means() {
        let mut s = LoadLatencyStats::new();
        s.record(LoadSource::Direct, 0, 4);
        s.record(LoadSource::Direct, 0, 8);
        s.record(LoadSource::Delayed, 0, 42);
        assert_eq!(s.mean_latency(LoadSource::Direct), 6.0);
        assert_eq!(s.mean_latency(LoadSource::Delayed), 42.0);
        assert_eq!(s.overall_mean(), 18.0);
    }

    #[test]
    fn merge_combines_classes() {
        let mut a = LoadLatencyStats::new();
        a.record(LoadSource::Direct, 0, 2);
        let mut b = LoadLatencyStats::new();
        b.record(LoadSource::Direct, 0, 4);
        b.record(LoadSource::Predicated, 0, 6);
        a.merge(&b);
        assert_eq!(a.count(LoadSource::Direct), 2);
        assert_eq!(a.mean_latency(LoadSource::Direct), 3.0);
        assert_eq!(a.count(LoadSource::Predicated), 1);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(LoadSource::Direct.label(), "Direct access");
        assert_eq!(LoadSource::Bypassed.label(), "Bypassing");
        assert_eq!(LoadSource::Delayed.label(), "Delayed access");
    }

    #[test]
    fn empty_stats() {
        let s = LoadLatencyStats::new();
        assert_eq!(s.total(), 0);
        assert_eq!(s.fraction(LoadSource::Direct), 0.0);
        assert_eq!(s.overall_mean(), 0.0);
    }
}
