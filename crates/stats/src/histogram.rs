/// A bounded integer histogram: samples above the bound accumulate in an
/// overflow bucket.
///
/// Used for load-latency distributions and store-buffer occupancy.
///
/// # Example
///
/// ```
/// use dmdp_stats::Histogram;
/// let mut h = Histogram::new(16);
/// for v in [1, 1, 2, 100] {
///     h.add(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.bucket(1), 2);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.percentile(50.0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram covering values `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn new(bound: usize) -> Histogram {
        assert!(bound > 0, "histogram bound must be positive");
        Histogram { buckets: vec![0; bound], overflow: 0, count: 0, sum: 0 }
    }

    /// Adds one sample. Counts and the running sum saturate at
    /// `u64::MAX` instead of wrapping, so a pathological feed (huge
    /// latencies over a billion-cycle run) degrades the mean rather
    /// than corrupting every statistic in a release build.
    #[inline]
    pub fn add(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        match self.buckets.get_mut(value as usize) {
            Some(b) => *b = b.saturating_add(1),
            None => self.overflow = self.overflow.saturating_add(1),
        }
    }

    /// Count in an exact-value bucket (0 for values past the bound).
    pub fn bucket(&self, value: u64) -> u64 {
        self.buckets.get(value as usize).copied().unwrap_or(0)
    }

    /// Samples at or above the bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (overflow samples contribute their true value).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The smallest value `v` such that at least `p` percent of samples are
    /// `<= v`; overflow samples report the bound.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0` or the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        assert!(self.count > 0, "percentile of empty histogram");
        let threshold = (p / 100.0 * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (v, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= threshold {
                return v as u64;
            }
        }
        self.buckets.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let mut h = Histogram::new(4);
        h.add(0);
        h.add(3);
        h.add(3);
        h.add(4); // overflow
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(3), 2);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 2.5);
    }

    #[test]
    fn percentiles() {
        let mut h = Histogram::new(100);
        for v in 1..=10 {
            h.add(v);
        }
        assert_eq!(h.percentile(10.0), 1);
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(100.0), 10);
    }

    #[test]
    fn percentile_of_overflow_reports_bound() {
        let mut h = Histogram::new(4);
        h.add(1000);
        assert_eq!(h.percentile(50.0), 4);
    }

    #[test]
    fn extreme_samples_saturate_instead_of_wrapping() {
        let mut h = Histogram::new(4);
        h.add(u64::MAX);
        h.add(u64::MAX); // sum would wrap to small without saturation
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow(), 2);
        // The sum pins at u64::MAX, so the mean stays huge rather than
        // collapsing to ~0 as a wrapped sum would.
        assert_eq!(h.mean(), u64::MAX as f64 / 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_percentile_panics() {
        Histogram::new(4).percentile(50.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        let _ = Histogram::new(0);
    }
}
