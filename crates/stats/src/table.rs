use std::fmt;

/// A fixed-width text table, used by the benchmark harnesses to print the
/// paper's tables and figure series.
///
/// # Example
///
/// ```
/// use dmdp_stats::Table;
/// let mut t = Table::new(["bench", "baseline", "DMDP"]);
/// t.row(["wrf", "18.17", "9.19"]);
/// let s = t.to_string();
/// assert!(s.contains("bench"));
/// assert!(s.contains("9.19"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match header width");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // Left-align the first column (names), right-align numbers.
                if i == 0 {
                    write!(f, "{:<width$}", cell, width = widths[i])?;
                } else {
                    write!(f, "{:>width$}", cell, width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 3 decimals — the precision used throughout the
/// harness output.
pub(crate) fn _fmt3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "v"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right alignment of the numeric column.
        assert!(lines[2].ends_with(" 1"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
