#![warn(missing_docs)]
//! # dmdp-stats
//!
//! Statistics collection and reporting for the DMDP reproduction.
//!
//! The paper's evaluation reports a small set of recurring quantities:
//! IPC normalized to a baseline (geometric means over benchmark suites),
//! per-class load execution times (Figures 2–3, Tables IV–V), event rates
//! per kilo-instruction (Tables VI–VII), and energy-delay products
//! (Figure 15). This crate provides the corresponding building blocks:
//!
//! * [`Mean`] — a running arithmetic mean,
//! * [`Histogram`] — a bounded integer histogram with percentile queries,
//! * [`LoadSource`] / [`LoadLatencyStats`] — the paper's load
//!   classification (direct / bypassing / delayed / predicated) with
//!   per-class latency tracking,
//! * [`geomean`] and [`mpki`] — the summary statistics the paper reports,
//! * [`Table`] — fixed-width text tables for the benchmark harnesses.

mod histogram;
mod loadlat;
mod table;

pub use histogram::Histogram;
pub use loadlat::{LoadLatencyStats, LoadSource};
pub use table::Table;

/// A running arithmetic mean over `u64` samples.
///
/// # Example
///
/// ```
/// use dmdp_stats::Mean;
/// let mut m = Mean::new();
/// m.add(10);
/// m.add(20);
/// assert_eq!(m.count(), 2);
/// assert_eq!(m.mean(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Mean {
    sum: u64,
    count: u64,
}

impl Mean {
    /// Creates an empty mean.
    pub fn new() -> Mean {
        Mean::default()
    }

    /// Adds one sample.
    #[inline]
    pub fn add(&mut self, sample: u64) {
        self.sum += sample;
        self.count += 1;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The mean, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another mean into this one.
    pub fn merge(&mut self, other: Mean) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Geometric mean of a sequence of positive values; returns 0.0 for an
/// empty input.
///
/// The paper summarizes per-suite speedups with geometric means
/// (e.g. "the geometric mean of the speed-up is 7.17 % (Int)").
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Example
///
/// ```
/// use dmdp_stats::geomean;
/// let g = geomean([2.0, 8.0]);
/// assert!((g - 4.0).abs() < 1e-12);
/// ```
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Events per kilo-instruction, the unit of Tables VI and VII.
///
/// # Example
///
/// ```
/// use dmdp_stats::mpki;
/// assert_eq!(mpki(30, 10_000), 3.0);
/// assert_eq!(mpki(5, 0), 0.0);
/// ```
pub fn mpki(events: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        events as f64 * 1000.0 / instructions as f64
    }
}

/// Relative change `(new - old) / old`, reported by the paper as
/// percentage speedups; positive means `new` is larger.
///
/// # Panics
///
/// Panics if `old` is zero.
///
/// # Example
///
/// ```
/// use dmdp_stats::rel_change;
/// assert!((rel_change(1.0, 1.07) - 0.07).abs() < 1e-12);
/// ```
pub fn rel_change(old: f64, new: f64) -> f64 {
    assert!(old != 0.0, "relative change from zero is undefined");
    (new - old) / old
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_is_zero() {
        assert_eq!(Mean::new().mean(), 0.0);
    }

    #[test]
    fn mean_accumulates_and_merges() {
        let mut a = Mean::new();
        a.add(1);
        a.add(2);
        let mut b = Mean::new();
        b.add(9);
        a.merge(b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 12);
        assert_eq!(a.mean(), 4.0);
    }

    #[test]
    fn geomean_singleton() {
        assert!((geomean([7.0]) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty() {
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean([1.0, 0.0]);
    }

    #[test]
    fn mpki_scales() {
        assert_eq!(mpki(1, 1000), 1.0);
        assert_eq!(mpki(3060, 1_000_000), 3.06);
    }

    #[test]
    fn rel_change_signs() {
        assert!(rel_change(2.0, 1.0) < 0.0);
        assert_eq!(rel_change(2.0, 2.0), 0.0);
    }
}
