#!/usr/bin/env bash
# Perf-trajectory recorder: runs the simulator-throughput bench plus a
# timed test-scale campaign and appends one record to BENCH_PR9.json.
#
# Usage: scripts/bench.sh [label] [kernel ...]
#
# Since PR 10 `dmdp serve` can shard across worker processes; the
# record's `sharded_speedup` block times the test-scale smoke campaign
# submitted through a daemon three ways — in-process (no workers), one
# worker shard, two worker shards — each min-of-3 over a fresh store.
# It records the coordinator-overhead ratio (1-worker vs in-process at
# equal cores, target <= 1.10) and the 2-worker speedup (target >= 1.6
# where the host actually has >= 2 cores; the host core count is in the
# record, and on a single-core box the two shards time-slice one CPU,
# so no speedup is expected or claimed).
#
# Each record carries the host calibration figure printed by the bench
# (a fixed xorshift64 loop, in Mops) and, per kernel × model, both raw
# simulated MIPS and `norm` — host-normalised MIPS, i.e. simulated MIPS
# per giga-op/s of host integer speed — so numbers recorded on
# different machines (or a loaded CI box) stay comparable.
#
# Since PR 7 configuration sweeps run through the batched lockstep
# engine; the record's `sweep_batch_speedup` block times a 9-point
# store-buffer sizing sweep (paper §VI-g style) both batched and
# job-per-variant — the PR-4-era execution model — and records the
# wall-clock ratio (target: >= 2x). The `host_norm_speedup` block
# compares per-(kernel × model) host-normalised throughput against the
# last record in BENCH_PR7.json. Throughput is measured min-of-3
# (`--repeats 3`) to strip host noise.
#
# Since PR 8 every campaign runs with the always-on metrics registry and
# structured event instrumentation; the `metrics_overhead` block times
# the test-scale smoke campaign min-of-3 cold and compares
# host-normalised wall (wall × calib Mops) against the last PR-7 record
# — target ratio <= 1.02 (metrics must cost under 2% wall).
#
# Since PR 9 campaigns can run sampled (SimPoint-style interval
# clustering + checkpoint fast-forward); the `sampled_speedup` block
# runs the kernel matrix at the largest common scale (huge) both
# full-detail and sampled (default knobs: 10000-insn intervals, 1
# warmup interval) and records the wall ratio (target: >= 5x) plus the
# geomean/max |IPC error| of the sampled estimates. One kernel
# (zeusmp) is held out of the A/B and simulated sampled-only at huge —
# the scale-beyond-budget use case sampling exists for.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-pr10}"
if [ "$#" -gt 0 ]; then shift; fi

out=BENCH_PR10.json
prev=BENCH_PR9.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

cargo build --release -q
cargo bench -p dmdp-bench --bench sim_throughput -- --repeats 3 "$@" | tee "$raw"

# Timed test-scale campaign, min-of-3 cold runs (the artifact is the
# campaign's digest cache, so removing it before each run forces a full
# simulation). The min strips scheduler noise on loaded boxes — the same
# reason sim_throughput runs --repeats 3.
camp_out=bench-results/bench-sh-campaign.json
camp_s=
for _ in 1 2 3; do
    rm -f "$camp_out"
    camp_start=$(date +%s.%N)
    cargo run --release -q -p dmdp-bench --bin dmdp -- \
        campaign --name bench-sh --scale test --model all \
        --jobs "$(nproc)" --out "$camp_out" --quiet
    camp_end=$(date +%s.%N)
    run_s=$(awk -v a="$camp_start" -v b="$camp_end" 'BEGIN { printf "%.3f", b - a }')
    if [ -z "$camp_s" ] || awk -v a="$run_s" -v b="$camp_s" 'BEGIN { exit !(a < b) }'; then
        camp_s=$run_s
    fi
done
test -s "$camp_out"

# Sweep-batching A/B: the same 9-variant store-buffer sizing sweep, all
# four models, run batched (lockstep units + never-bound derivation) and
# job-per-variant. `--force` defeats the digest cache so both sides
# simulate from scratch; the ci.sh smoke separately pins that the two
# paths produce identical per-variant numbers.
sweep_kernels="--kernel astar --kernel perl --kernel mcf --kernel namd"
sweep_variants="--variant main= --variant sb1=sb:1 --variant sb2=sb:2 \
    --variant sb4=sb:4 --variant sb6=sb:6 --variant sb8=sb:8 \
    --variant sb12=sb:12 --variant sb24=sb:24 --variant sb32=sb:32"
sweep_wall() {
    local mode=$1 out_json=$2 t0 t1
    rm -f "$out_json"
    t0=$(date +%s.%N)
    # shellcheck disable=SC2086
    cargo run --release -q -p dmdp-bench --bin dmdp -- \
        campaign --name bench-sweep-$mode --scale small --model all \
        $sweep_kernels $sweep_variants --batch-variants "$mode" \
        --force --quiet --out "$out_json" >/dev/null
    t1=$(date +%s.%N)
    awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }'
}
sweep_on_s=$(sweep_wall on bench-results/bench-sweep-batched.json)
sweep_off_s=$(sweep_wall off bench-results/bench-sweep-jpv.json)
sweep_batch_speedup=$(jq -n \
    --argjson on "$sweep_on_s" --argjson off "$sweep_off_s" \
    '{sweep: {variants: 9, kernels: ["astar", "perl", "mcf", "namd"],
              models: "all", scale: "small", knob: "store_buffer_entries"},
      batched_wall_s: $on, job_per_variant_wall_s: $off,
      ratio: ($off / $on), baseline_label: "pr4"}')

calib=$(awk '$1 == "calib" { print $2 }' "$raw")
entries=$(awk -v calib="$calib" '$4 == "ms/run" {
    printf "{\"kernel\":\"%s\",\"model\":\"%s\",\"ms_per_run\":%s,\"mips\":%s,\"norm\":%.3f}\n",
        $1, $2, $3, $5, $5 * 1000 / calib
}' "$raw" | jq -s '.')

# Host-normalised throughput vs the last PR-4 record: mean over the
# kernel × model entries both records share.
host_norm_speedup=null
if [ -s "$prev" ]; then
    host_norm_speedup=$(jq --argjson entries "$entries" '
        .[-1] as $p |
        ($p.entries | map({key: "\(.kernel)/\(.model)", value: .norm}) | from_entries) as $base |
        [$entries[] | select($base[("\(.kernel)/\(.model)")] != null)
            | {cur: .norm, base: $base[("\(.kernel)/\(.model)")]}] as $pairs |
        if ($pairs | length) == 0 then null else
        {baseline_label: $p.label,
         baseline_norm_mean: (($pairs | map(.base) | add) / ($pairs | length)),
         current_norm_mean: (($pairs | map(.cur) | add) / ($pairs | length)),
         ratio: ((($pairs | map(.cur) | add)) / (($pairs | map(.base) | add)))}
        end' "$prev")
fi

# Metrics-overhead gate: host-normalised smoke-campaign wall (wall ×
# calib, cancelling host speed) against the pre-instrumentation PR-7
# record. Target <= 1.02.
metrics_overhead=null
if [ -s "$prev" ]; then
    metrics_overhead=$(jq --argjson camp_s "$camp_s" --argjson calib "$calib" '
        .[-1] as $p |
        if $p.campaign_test_scale_wall_s == null or $p.calib_host_mops == null
        then null else
        {baseline_label: $p.label,
         baseline_wall_s: $p.campaign_test_scale_wall_s,
         current_wall_s: $camp_s,
         wall_ratio: ($camp_s / $p.campaign_test_scale_wall_s),
         host_norm_ratio: (($camp_s * $calib)
                           / ($p.campaign_test_scale_wall_s * $p.calib_host_mops)),
         target: "host_norm_ratio <= 1.02"}
        end' "$prev")
fi

# Sampled-vs-full A/B at the largest common scale. Every kernel but
# the hold-out runs both ways at Scale::Huge, all four models;
# `dmdp report --error-vs --json` folds the two artifacts into wall
# times and per-row IPC errors. `--force` defeats the digest cache on
# both sides so the walls are honest.
samp_kernels=""
for k in Gems astar bwaves bzip2 gcc gobmk gromacs h264ref hmmer lbm \
         leslie3d lib mcf milc namd perl sjeng sphinx3 tonto wrf; do
    samp_kernels="$samp_kernels --kernel $k"
done
# shellcheck disable=SC2086
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    campaign --name bench-huge-full --scale huge --model all \
    $samp_kernels --force --quiet \
    --out bench-results/bench-huge-full.json >/dev/null
# shellcheck disable=SC2086
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    campaign --name bench-huge-samp --scale huge --model all \
    $samp_kernels --sampled --force --quiet \
    --out bench-results/bench-huge-samp.json >/dev/null
sampled_ab=$(cargo run --release -q -p dmdp-bench --bin dmdp -- \
    report bench-results/bench-huge-samp.json \
    --error-vs bench-results/bench-huge-full.json --json)

# The hold-out kernel, sampled-only: no full-detail huge run of zeusmp
# exists anywhere in this record — its IPC estimates come from sampling
# alone.
so_t0=$(date +%s.%N)
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    campaign --name bench-huge-only --scale huge --model all \
    --kernel zeusmp --sampled --force --quiet \
    --out bench-results/bench-huge-sampled-only.json >/dev/null
so_t1=$(date +%s.%N)
so_wall=$(awk -v a="$so_t0" -v b="$so_t1" 'BEGIN { printf "%.3f", b - a }')
sampled_speedup=$(jq --argjson so_wall "$so_wall" \
    '{scale: "huge", kernels: 20, models: "all",
      interval_insns: 10000, warmup_intervals: 1,
      sampled_wall_s: .sampled_wall_s, full_wall_s: .full_wall_s,
      ratio: .wall_speedup, target: "ratio >= 5",
      geomean_abs_error_pct: .geomean_abs_error_pct,
      max_abs_error_pct: .max_abs_error_pct,
      sampled_only: {kernel: "zeusmp", scale: "huge", wall_s: $so_wall}}' \
    <<<"$sampled_ab")

# Sharded A/B: the test-scale smoke campaign submitted through a daemon
# with 0 (in-process), 1 and 2 worker shards, min-of-3 each over a
# fresh store so every wall is a full cold simulation of the matrix.
dmdp_bin=target/release/dmdp
sharded_wall() {
    local workers=$1 best=
    local d sock log pid t0 t1 run_s n
    for _ in 1 2 3; do
        d=$(mktemp -d)
        sock="$d/dmdp.sock"
        log="$d/events.jsonl"
        if [ "$workers" -gt 0 ]; then
            "$dmdp_bin" serve --socket "$sock" --store "$d/store" \
                --workers "$workers" --quiet --log "$log" >/dev/null &
        else
            "$dmdp_bin" serve --socket "$sock" --store "$d/store" \
                --quiet --log "$log" >/dev/null &
        fi
        pid=$!
        for _ in $(seq 1 200); do
            n=$(jq -rn '[inputs | select(.event == "worker_registered")] | length' \
                "$log" 2>/dev/null || echo 0)
            [ -S "$sock" ] && [ "$n" = "$workers" ] && break
            sleep 0.05
        done
        t0=$(date +%s.%N)
        "$dmdp_bin" submit --socket "$sock" --scale test --model all --quiet \
            --name "bench-shard-$workers" --out "$d/out.json" >/dev/null
        t1=$(date +%s.%N)
        "$dmdp_bin" submit --socket "$sock" --shutdown >/dev/null
        wait "$pid"
        rm -rf "$d"
        run_s=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')
        if [ -z "$best" ] || awk -v a="$run_s" -v b="$best" 'BEGIN { exit !(a < b) }'; then
            best=$run_s
        fi
    done
    echo "$best"
}
inproc_s=$(sharded_wall 0)
w1_s=$(sharded_wall 1)
w2_s=$(sharded_wall 2)
sharded_speedup=$(jq -n \
    --argjson inproc "$inproc_s" --argjson w1 "$w1_s" --argjson w2 "$w2_s" \
    --argjson cores "$(nproc)" \
    '{scale: "test", models: "all", host_cores: $cores,
      in_process_wall_s: $inproc,
      one_worker_wall_s: $w1,
      two_worker_wall_s: $w2,
      coordinator_overhead_ratio: ($w1 / $inproc),
      overhead_target: "ratio <= 1.10 at equal cores",
      two_worker_speedup: ($w1 / $w2),
      speedup_target: "ratio >= 1.6 with >= 2 host cores",
      note: (if $cores < 2
             then "single-core host: both shards time-slice one CPU, no speedup expected"
             else null end)}')

record=$(jq -n \
    --arg lbl "$label" \
    --arg date "$(date -u +%F)" \
    --arg commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    --argjson calib "$calib" \
    --argjson camp_s "$camp_s" \
    --argjson entries "$entries" \
    --argjson sbs "$sweep_batch_speedup" \
    --argjson hns "$host_norm_speedup" \
    --argjson mo "$metrics_overhead" \
    --argjson ss "$sampled_speedup" \
    --argjson shard "$sharded_speedup" \
    '{"label": $lbl, "date": $date, "commit": $commit,
      "calib_host_mops": $calib, "campaign_test_scale_wall_s": $camp_s,
      "sweep_batch_speedup": $sbs,
      "host_norm_speedup": $hns,
      "metrics_overhead": $mo,
      "sampled_speedup": $ss,
      "sharded_speedup": $shard,
      "entries": $entries}')

[ -s "$out" ] || echo '[]' > "$out"
jq --argjson rec "$record" '. + [$rec]' "$out" > "$out.tmp" && mv "$out.tmp" "$out"

echo "bench: appended record \"$label\" to $out (campaign ${camp_s}s, sweep batched ${sweep_on_s}s vs jpv ${sweep_off_s}s, sampled A/B $(jq -r '.ratio | . * 100 | round / 100' <<<"$sampled_speedup")x, sharded inproc/${inproc_s}s w1/${w1_s}s w2/${w2_s}s)"
