#!/usr/bin/env bash
# Perf-trajectory recorder: runs the simulator-throughput bench plus a
# timed test-scale campaign and appends one record to BENCH_PR4.json.
#
# Usage: scripts/bench.sh [label] [kernel ...]
#
# Each record carries the host calibration figure printed by the bench
# (a fixed xorshift64 loop, in Mops) and, per kernel × model, both raw
# simulated MIPS and `norm` — host-normalised MIPS, i.e. simulated MIPS
# per giga-op/s of host integer speed — so numbers recorded on
# different machines (or a loaded CI box) stay comparable.
#
# Since PR 4 the simulator decodes through the static µop plan cache and
# its recovery/commit hot paths are allocation-free; the record's
# `plan_cache_speedup` block compares host-normalised throughput against
# the last PR-3 record in BENCH_PR3.json (target: ratio >= 1.25).
# Throughput is measured min-of-3 (`--repeats 3`) to strip host noise.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-pr4}"
if [ "$#" -gt 0 ]; then shift; fi

out=BENCH_PR4.json
prev=BENCH_PR3.json
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

cargo build --release -q
cargo bench -p dmdp-bench --bench sim_throughput -- --repeats 3 "$@" | tee "$raw"

camp_out=bench-results/bench-sh-campaign.json
rm -f "$camp_out"
camp_start=$(date +%s.%N)
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    campaign --name bench-sh --scale test --model all \
    --jobs "$(nproc)" --out "$camp_out" --quiet
camp_end=$(date +%s.%N)
camp_s=$(awk -v a="$camp_start" -v b="$camp_end" 'BEGIN { printf "%.3f", b - a }')
test -s "$camp_out"

calib=$(awk '$1 == "calib" { print $2 }' "$raw")
entries=$(awk -v calib="$calib" '$4 == "ms/run" {
    printf "{\"kernel\":\"%s\",\"model\":\"%s\",\"ms_per_run\":%s,\"mips\":%s,\"norm\":%.3f}\n",
        $1, $2, $3, $5, $5 * 1000 / calib
}' "$raw" | jq -s '.')

# Plan-cache speedup vs the last PR-3 record: mean host-normalised MIPS
# over the kernel × model entries both records share.
plan_cache_speedup=null
if [ -s "$prev" ]; then
    plan_cache_speedup=$(jq --argjson entries "$entries" '
        .[-1] as $p |
        ($p.entries | map({key: "\(.kernel)/\(.model)", value: .norm}) | from_entries) as $base |
        [$entries[] | select($base[("\(.kernel)/\(.model)")] != null)
            | {cur: .norm, base: $base[("\(.kernel)/\(.model)")]}] as $pairs |
        if ($pairs | length) == 0 then null else
        {baseline_label: $p.label,
         baseline_norm_mean: (($pairs | map(.base) | add) / ($pairs | length)),
         plan_cache_norm_mean: (($pairs | map(.cur) | add) / ($pairs | length)),
         ratio: ((($pairs | map(.cur) | add)) / (($pairs | map(.base) | add)))}
        end' "$prev")
fi

record=$(jq -n \
    --arg lbl "$label" \
    --arg date "$(date -u +%F)" \
    --arg commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    --argjson calib "$calib" \
    --argjson camp_s "$camp_s" \
    --argjson entries "$entries" \
    --argjson pcs "$plan_cache_speedup" \
    '{"label": $lbl, "date": $date, "commit": $commit,
      "calib_host_mops": $calib, "campaign_test_scale_wall_s": $camp_s,
      "plan_cache_speedup": $pcs,
      "entries": $entries}')

[ -s "$out" ] || echo '[]' > "$out"
jq --argjson rec "$record" '. + [$rec]' "$out" > "$out.tmp" && mv "$out.tmp" "$out"

echo "bench: appended record \"$label\" to $out (campaign ${camp_s}s)"
