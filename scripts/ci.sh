#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, smoke campaign.
#
# The smoke campaign runs every kernel under every communication model at
# `test` scale through the parallel harness and checks that a fresh JSON
# artifact lands with one row per (kernel, model) pair.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Lint gate: the workspace must be clippy-clean (all targets — lib,
# bins, tests, benches, examples) with warnings promoted to errors.
cargo clippy --workspace --all-targets -- -D warnings

# Timing-regression gate: the golden-stats digests pin the simulated
# timing of every (kernel × model) test-scale job. Already part of the
# suite above, but run by name so a digest mismatch fails CI loudly and
# in isolation (re-record with GOLDEN_RECORD=1 only for intentional
# timing changes, alongside a SIM_VERSION bump).
cargo test -q -p dmdp-core --test golden_stats

out=bench-results/ci-smoke.json
rm -f "$out"
smoke_start=$(date +%s.%N)
cargo run --release -p dmdp-bench --bin dmdp -- \
    campaign --name ci-smoke --scale test --model all \
    --jobs "$(nproc)" --out "$out" --quiet
smoke_end=$(date +%s.%N)
test -s "$out"

# Host-throughput smoke: the test-scale campaign must not run more than
# 3x slower than the wall time recorded by the last PR-3 bench record.
# A coarse gate — it only catches order-of-magnitude regressions (an
# accidental debug-assert hot path, a reintroduced per-cycle allocation)
# without flaking on loaded CI boxes.
if [ -s BENCH_PR3.json ]; then
    smoke_s=$(awk -v a="$smoke_start" -v b="$smoke_end" 'BEGIN { printf "%.3f", b - a }')
    ref_s=$(jq -r '.[-1].campaign_test_scale_wall_s' BENCH_PR3.json)
    if [ "$ref_s" != "null" ] && [ -n "$ref_s" ]; then
        awk -v cur="$smoke_s" -v ref="$ref_s" 'BEGIN {
            if (cur > 3 * ref) {
                printf "ci: FAIL: smoke campaign took %.3fs, >3x the recorded %.3fs\n", cur, ref
                exit 1
            }
            printf "ci: smoke campaign %.3fs (reference %.3fs, limit 3x)\n", cur, ref
        }'
    fi
fi

# Probe smoke: a traced + sampled test-scale run must emit non-empty,
# well-formed JSON artifacts. (That probes leave simulated timing
# untouched is pinned by the golden_stats probed test above.)
trace=bench-results/ci-trace.jsonl
samples=bench-results/ci-samples.json
rm -f "$trace" "$samples"
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    run --workload gcc --scale test --model dmdp \
    --trace "$trace" --sample-every 200 --sample-out "$samples" >/dev/null
test -s "$trace"
test -s "$samples"
jq -es 'length > 0 and all(has("seq") and has("kind") and has("rename"))' \
    "$trace" >/dev/null
jq -e 'type == "array" and length > 0 and all(has("cycle") and has("ipc"))' \
    "$samples" >/dev/null

# `dmdp report` must render any campaign artifact, the smoke one included.
cargo run --release -q -p dmdp-bench --bin dmdp -- report "$out" \
    | grep -q "IPC by workload"

# Sampled-simulation smoke: profile + cluster + sampled run of one
# kernel at test scale next to its full-detail run. The error table
# must be well-formed and every model's |sampled − full| IPC error must
# stay within 2%. (mcf at these knobs sits under 0.2% — the 2% gate is
# the acceptance bound, not the expectation.)
samp_full=bench-results/ci-sampled-full.json
samp_est=bench-results/ci-sampled.json
rm -f "$samp_full" "$samp_est"
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    campaign --name ci-sampled-full --scale test --model all \
    --kernel mcf --force --quiet --out "$samp_full"
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    campaign --name ci-sampled --scale test --model all \
    --kernel mcf --sampled --interval-insns 1000 --warmup-intervals 2 \
    --force --quiet --out "$samp_est"
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    report "$samp_est" --error-vs "$samp_full" --json \
    | jq -e '
        .type == "sampled_error"
        and .rows_compared == 4
        and (.rows | length == 4)
        and (.rows | all(has("workload") and has("model")
                         and has("sampled_ipc") and has("full_ipc")
                         and has("error_pct")))
        and ([.rows[].error_pct | fabs] | max) <= 2
    ' >/dev/null \
    || { echo "ci: FAIL: sampled-vs-full IPC error exceeds 2% (or malformed table)"; exit 1; }

# Sweep-batching smoke: one multi-variant sizing sweep run twice — as
# batched lockstep units and job-per-variant — must produce identical
# per-variant numbers (digest, cycles, IPC). The sb64 upsize exercises
# the never-bound derivation path; rob32/sb2 bind and run live lanes.
sweep_on=bench-results/ci-sweep-batched.json
sweep_off=bench-results/ci-sweep-jpv.json
rm -f "$sweep_on" "$sweep_off"
for mode in on off; do
    case $mode in on) sweep_out=$sweep_on;; *) sweep_out=$sweep_off;; esac
    cargo run --release -q -p dmdp-bench --bin dmdp -- \
        campaign --name ci-sweep-$mode --scale test --model all \
        --kernel mcf --kernel astar \
        --variant main= --variant rob32=rob:32 --variant sb2=sb:2 \
        --variant sb64=sb:64 \
        --batch-variants $mode --force --quiet --out "$sweep_out"
    test -s "$sweep_out"
done
variants_of() {
    jq -S '[.jobs[] | {workload, model, variant, digest, cycles, ipc}]
           | sort_by(.digest)' "$1"
}
diff <(variants_of "$sweep_on") <(variants_of "$sweep_off") \
    || { echo "ci: FAIL: batched sweep diverges from job-per-variant"; exit 1; }

# Daemon smoke: serve on a temp socket, submit the smoke campaign twice.
# The second submission must be satisfied entirely from the persistent
# store (0 executed), carry numbers identical to the local smoke
# artifact, and the daemon must drain and exit cleanly on shutdown.
dmdp_bin=target/release/dmdp
serve_dir=$(mktemp -d)
serve_sock="$serve_dir/dmdp.sock"
serve_pid=
cleanup_serve() {
    if [ -n "$serve_pid" ] && kill -0 "$serve_pid" 2>/dev/null; then
        kill "$serve_pid" 2>/dev/null || true
        wait "$serve_pid" 2>/dev/null || true
    fi
    rm -rf "$serve_dir"
}
trap cleanup_serve EXIT

serve_log="$serve_dir/events.jsonl"
"$dmdp_bin" serve --socket "$serve_sock" --store "$serve_dir/store" \
    --jobs "$(nproc)" --quiet \
    --tcp 127.0.0.1:0 --log "$serve_log" --log-level debug --slow-job-ms 0 &
serve_pid=$!
for _ in $(seq 1 200); do
    [ -S "$serve_sock" ] && break
    sleep 0.05
done
test -S "$serve_sock"

# The daemon announces its resolved ephemeral TCP port in the
# structured event log; observability checks below scrape it over HTTP.
serve_tcp=
for _ in $(seq 1 200); do
    serve_tcp=$(jq -rn 'first(inputs | select(.event == "listening") | .tcp) // empty' \
        "$serve_log" 2>/dev/null || true)
    [ -n "$serve_tcp" ] && break
    sleep 0.05
done
test -n "$serve_tcp" || { echo "ci: FAIL: no listening event in $serve_log"; exit 1; }

submit="$dmdp_bin submit --socket $serve_sock --scale test --model all --quiet"
$submit --name ci-serve-1 --out "$serve_dir/first.json"
$submit --name ci-serve-2 --out "$serve_dir/second.json"

# Observability smoke: the Prometheus scrape must be well-formed (each
# metric family declared exactly once) and show the sweep's work.
prom="$serve_dir/metrics.prom"
"$dmdp_bin" metrics --prom --tcp "$serve_tcp" > "$prom"
dup_types=$(grep '^# TYPE ' "$prom" | sort | uniq -d)
[ -z "$dup_types" ] || { echo "ci: FAIL: duplicate # TYPE lines:"; echo "$dup_types"; exit 1; }
grep -q '^# TYPE dmdp_requests_total counter$' "$prom"
grep -q '^# TYPE dmdp_queue_wait_us histogram$' "$prom"
grep -q '^dmdp_jobs_total{source="executed"} [1-9]' "$prom"
grep -q '^dmdp_queue_wait_us_count [1-9]' "$prom"

# The same snapshot over the NDJSON protocol must be valid JSON with
# populated counters and histograms.
"$dmdp_bin" metrics --socket "$serve_sock" | jq -e '
    .type == "metrics"
    and (.metrics | length > 0)
    and ([.metrics[] | select(.name == "dmdp_requests_total")] | length > 0)
    and ([.metrics[] | select(.name == "dmdp_queue_wait_us"
                              and .count > 0
                              and (.buckets | length > 0))] | length == 1)
' >/dev/null || { echo "ci: FAIL: metrics protocol snapshot malformed"; exit 1; }

# Request tracing: the artifact's trace id must appear in the daemon's
# event log, and with --slow-job-ms 0 every executed job logs slow_job.
serve_trace=$(jq -r '.trace_id // empty' "$serve_dir/first.json")
test -n "$serve_trace" || { echo "ci: FAIL: artifact carries no trace_id"; exit 1; }
jq -en --arg t "$serve_trace" \
    '[inputs] | any(.event == "submit_done" and .trace == $t)' "$serve_log" \
    >/dev/null || { echo "ci: FAIL: trace $serve_trace missing from event log"; exit 1; }
jq -en '[inputs] | any(.event == "slow_job")' "$serve_log" >/dev/null \
    || { echo "ci: FAIL: no slow_job events despite --slow-job-ms 0"; exit 1; }

# `dmdp top` renders two frames against the live daemon and exits.
# (No `grep -q`: an early pipe close would EPIPE the renderer.)
"$dmdp_bin" top --socket "$serve_sock" --iterations 2 --interval 0.2 --no-clear \
    | grep -c "HISTOGRAMS" >/dev/null \
    || { echo "ci: FAIL: dmdp top rendered no frame"; exit 1; }

# Second submission: zero executed, everything cached.
jq -e '.executed == 0 and .cached == (.jobs | length)' \
    "$serve_dir/second.json" >/dev/null \
    || { echo "ci: FAIL: second submission re-executed jobs"; exit 1; }
# Daemon numbers must match the locally-run smoke campaign exactly.
digests_of() { jq -S '[.jobs[] | {digest, cycles, ipc}] | sort_by(.digest)' "$1"; }
diff <(digests_of "$out") <(digests_of "$serve_dir/second.json") \
    || { echo "ci: FAIL: daemon results diverge from local campaign"; exit 1; }

# Graceful shutdown: acknowledged, clean exit code, socket removed.
"$dmdp_bin" submit --socket "$serve_sock" --shutdown
wait "$serve_pid"
serve_pid=
[ ! -e "$serve_sock" ] || { echo "ci: FAIL: daemon left its socket behind"; exit 1; }

# A client without a daemon must fail with a non-zero exit.
if "$dmdp_bin" submit --socket "$serve_sock" --ping --connect-retries 0 2>/dev/null; then
    echo "ci: FAIL: submit succeeded against a dead socket"
    exit 1
fi

# Sharded smoke: a coordinator spawning two worker shards must produce
# the same artifact as the local smoke campaign, satisfy a repeat submit
# entirely from the store, drain cleanly, and leave no worker behind.
shard_dir=$(mktemp -d)
shard_sock="$shard_dir/dmdp.sock"
shard_log="$shard_dir/events.jsonl"
shard_pid=
cleanup_shard() {
    if [ -n "$shard_pid" ] && kill -0 "$shard_pid" 2>/dev/null; then
        kill "$shard_pid" 2>/dev/null || true
        wait "$shard_pid" 2>/dev/null || true
    fi
    rm -rf "$shard_dir"
}
trap 'cleanup_serve; cleanup_shard' EXIT

"$dmdp_bin" serve --socket "$shard_sock" --store "$shard_dir/store" \
    --workers 2 --quiet --log "$shard_log" --log-level debug &
shard_pid=$!
for _ in $(seq 1 200); do
    n=$(jq -rn '[inputs | select(.event == "worker_registered")] | length' \
        "$shard_log" 2>/dev/null || echo 0)
    [ "$n" = 2 ] && break
    sleep 0.05
done
[ "$n" = 2 ] || { echo "ci: FAIL: workers never registered ($shard_log)"; exit 1; }

shard_submit="$dmdp_bin submit --socket $shard_sock --scale test --model all --quiet"
$shard_submit --name ci-shard-1 --out "$shard_dir/first.json"
$shard_submit --name ci-shard-2 --out "$shard_dir/second.json"

# Groups really flowed through the shards.
jq -en '[inputs] | any(.event == "dispatch")' "$shard_log" >/dev/null \
    || { echo "ci: FAIL: sharded daemon dispatched nothing"; exit 1; }
# Second submission: zero executed, everything from the shared store.
jq -e '.executed == 0 and .cached == (.jobs | length)' \
    "$shard_dir/second.json" >/dev/null \
    || { echo "ci: FAIL: second sharded submission re-executed jobs"; exit 1; }
# Sharded numbers must match the locally-run smoke campaign exactly.
diff <(digests_of "$out") <(digests_of "$shard_dir/second.json") \
    || { echo "ci: FAIL: sharded results diverge from local campaign"; exit 1; }

# Drain: coordinator exits cleanly and reaps both workers.
worker_pids=$(jq -rn '[inputs | select(.event == "worker_spawned") | .pid] | @tsv' \
    "$shard_log")
"$dmdp_bin" submit --socket "$shard_sock" --shutdown
wait "$shard_pid"
shard_pid=
for wp in $worker_pids; do
    for _ in $(seq 1 100); do
        kill -0 "$wp" 2>/dev/null || break
        sleep 0.05
    done
    if kill -0 "$wp" 2>/dev/null; then
        echo "ci: FAIL: worker $wp left running after drain"
        kill -9 "$wp" 2>/dev/null || true
        exit 1
    fi
done

echo "ci: build + tests + smoke campaign + probe artifacts + sampled smoke + sweep batching + daemon/metrics + sharded smoke OK ($out)"
