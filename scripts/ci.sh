#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, smoke campaign.
#
# The smoke campaign runs every kernel under every communication model at
# `test` scale through the parallel harness and checks that a fresh JSON
# artifact lands with one row per (kernel, model) pair.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Timing-regression gate: the golden-stats digests pin the simulated
# timing of every (kernel × model) test-scale job. Already part of the
# suite above, but run by name so a digest mismatch fails CI loudly and
# in isolation (re-record with GOLDEN_RECORD=1 only for intentional
# timing changes, alongside a SIM_VERSION bump).
cargo test -q -p dmdp-core --test golden_stats

out=bench-results/ci-smoke.json
rm -f "$out"
cargo run --release -p dmdp-bench --bin dmdp -- \
    campaign --name ci-smoke --scale test --model all \
    --jobs "$(nproc)" --out "$out" --quiet
test -s "$out"

# Probe smoke: a traced + sampled test-scale run must emit non-empty,
# well-formed JSON artifacts. (That probes leave simulated timing
# untouched is pinned by the golden_stats probed test above.)
trace=bench-results/ci-trace.jsonl
samples=bench-results/ci-samples.json
rm -f "$trace" "$samples"
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    run --workload gcc --scale test --model dmdp \
    --trace "$trace" --sample-every 200 --sample-out "$samples" >/dev/null
test -s "$trace"
test -s "$samples"
jq -es 'length > 0 and all(has("seq") and has("kind") and has("rename"))' \
    "$trace" >/dev/null
jq -e 'type == "array" and length > 0 and all(has("cycle") and has("ipc"))' \
    "$samples" >/dev/null

# `dmdp report` must render any campaign artifact, the smoke one included.
cargo run --release -q -p dmdp-bench --bin dmdp -- report "$out" \
    | grep -q "IPC by workload"

echo "ci: build + tests + smoke campaign + probe artifacts OK ($out)"
