#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, smoke campaign.
#
# The smoke campaign runs every kernel under every communication model at
# `test` scale through the parallel harness and checks that a fresh JSON
# artifact lands with one row per (kernel, model) pair.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q

# Lint gate: the workspace must be clippy-clean (all targets — lib,
# bins, tests, benches, examples) with warnings promoted to errors.
cargo clippy --workspace --all-targets -- -D warnings

# Timing-regression gate: the golden-stats digests pin the simulated
# timing of every (kernel × model) test-scale job. Already part of the
# suite above, but run by name so a digest mismatch fails CI loudly and
# in isolation (re-record with GOLDEN_RECORD=1 only for intentional
# timing changes, alongside a SIM_VERSION bump).
cargo test -q -p dmdp-core --test golden_stats

out=bench-results/ci-smoke.json
rm -f "$out"
smoke_start=$(date +%s.%N)
cargo run --release -p dmdp-bench --bin dmdp -- \
    campaign --name ci-smoke --scale test --model all \
    --jobs "$(nproc)" --out "$out" --quiet
smoke_end=$(date +%s.%N)
test -s "$out"

# Host-throughput smoke: the test-scale campaign must not run more than
# 3x slower than the wall time recorded by the last PR-3 bench record.
# A coarse gate — it only catches order-of-magnitude regressions (an
# accidental debug-assert hot path, a reintroduced per-cycle allocation)
# without flaking on loaded CI boxes.
if [ -s BENCH_PR3.json ]; then
    smoke_s=$(awk -v a="$smoke_start" -v b="$smoke_end" 'BEGIN { printf "%.3f", b - a }')
    ref_s=$(jq -r '.[-1].campaign_test_scale_wall_s' BENCH_PR3.json)
    if [ "$ref_s" != "null" ] && [ -n "$ref_s" ]; then
        awk -v cur="$smoke_s" -v ref="$ref_s" 'BEGIN {
            if (cur > 3 * ref) {
                printf "ci: FAIL: smoke campaign took %.3fs, >3x the recorded %.3fs\n", cur, ref
                exit 1
            }
            printf "ci: smoke campaign %.3fs (reference %.3fs, limit 3x)\n", cur, ref
        }'
    fi
fi

# Probe smoke: a traced + sampled test-scale run must emit non-empty,
# well-formed JSON artifacts. (That probes leave simulated timing
# untouched is pinned by the golden_stats probed test above.)
trace=bench-results/ci-trace.jsonl
samples=bench-results/ci-samples.json
rm -f "$trace" "$samples"
cargo run --release -q -p dmdp-bench --bin dmdp -- \
    run --workload gcc --scale test --model dmdp \
    --trace "$trace" --sample-every 200 --sample-out "$samples" >/dev/null
test -s "$trace"
test -s "$samples"
jq -es 'length > 0 and all(has("seq") and has("kind") and has("rename"))' \
    "$trace" >/dev/null
jq -e 'type == "array" and length > 0 and all(has("cycle") and has("ipc"))' \
    "$samples" >/dev/null

# `dmdp report` must render any campaign artifact, the smoke one included.
cargo run --release -q -p dmdp-bench --bin dmdp -- report "$out" \
    | grep -q "IPC by workload"

echo "ci: build + tests + smoke campaign + probe artifacts OK ($out)"
